"""Critical-path profiler tests: hand-computed goldens, the telescoping
invariant (segment durations sum to ``finish_time``), cross-executor
identity of the attribution, run diffing, and the CLI.

The two-context fixtures are small enough to hand-simulate; the expected
numbers in the asserts were derived on paper from the channel timing
rules (enqueue stamps at ``sender_now + latency``; dequeue advances to
the stamp; a full bounded enqueue waits for ``dequeue_time +
resp_latency``).
"""

import json

import pytest

from repro import Observability, ProgramBuilder
from repro.contexts import (
    BinaryFunction,
    Broadcast,
    Collector,
    RampSource,
    UnaryFunction,
)
from repro.core import RunConfig
from repro.obs import diff_profiles, profile_trace
from repro.obs.__main__ import main as obs_main
from repro.obs.profile import (
    BLOCKED_ON_DEQUEUE,
    BLOCKED_ON_ENQUEUE,
    COMPUTE,
    ProfileReport,
    events_from_chrome_trace,
)


def run_with_profile(build, executor="sequential", **config_kwargs):
    obs = Observability()
    program = build()
    summary = program.run(
        executor=executor, config=RunConfig(obs=obs, **config_kwargs)
    )
    return obs.profile_report, summary


def build_starved_pipeline():
    """src (ii=2) -> c(cap=8, lat=1, resp=1) -> sink (ii=4).

    Hand simulation: src enqueues at t=0/2/4 (stamps 1/3/5), finishes at
    6; sink dequeues at t=1 (waited [0,1]), 5, 9, finishing at 13.  The
    critical path is the sink's 12 cycles of compute plus 1 cycle of
    starvation on c.
    """
    builder = ProgramBuilder()
    snd, rcv = builder.bounded(8, name="c")
    builder.add(RampSource(snd, 3, ii=2, name="src"))
    builder.add(Collector(rcv, ii=4, name="sink"))
    return builder.build()


def build_backpressured_pipeline():
    """src (ii=0) -> c(cap=1, lat=1, resp=1) -> sink (ii=0).

    With capacity 1 every transfer ping-pongs: the critical path
    alternates starvation (sink waiting on the stamp) and backpressure
    (src waiting on the dequeue response) with zero compute — dequeues at
    t=1/3/5, backpressured enqueues at t=2/4, finish_time 5.
    """
    builder = ProgramBuilder()
    snd, rcv = builder.bounded(1, name="c")
    builder.add(RampSource(snd, 3, ii=0, name="src"))
    builder.add(Collector(rcv, ii=0, name="sink"))
    return builder.build()


def build_diamond():
    """The known-diamond graph: a slow branch that must dominate.

    src -> broadcast -> {fast (ii=1), slow (ii=6)} -> join -> sink.
    The longest chain necessarily runs through ``slow``; the join's
    ``slow_out`` input is the starvation point.
    """
    builder = ProgramBuilder()
    feed_s, feed_r = builder.bounded(4, name="feed")
    fast_in_s, fast_in_r = builder.bounded(4, name="fast_in")
    slow_in_s, slow_in_r = builder.bounded(4, name="slow_in")
    fast_out_s, fast_out_r = builder.bounded(4, name="fast_out")
    slow_out_s, slow_out_r = builder.bounded(4, name="slow_out")
    join_s, join_r = builder.bounded(4, name="joined")
    builder.add(RampSource(feed_s, 4, name="src"))
    builder.add(Broadcast(feed_r, [fast_in_s, slow_in_s], name="split"))
    builder.add(UnaryFunction(fast_in_r, fast_out_s, lambda x: x + 1, ii=1, name="fast"))
    builder.add(UnaryFunction(slow_in_r, slow_out_s, lambda x: x * 2, ii=6, name="slow"))
    builder.add(
        BinaryFunction(fast_out_r, slow_out_r, join_s, lambda a, b: a + b, name="join")
    )
    builder.add(Collector(join_r, name="sink"))
    return builder.build()


ALL_EXECUTOR_LEGS = [
    ("sequential", {}),
    ("sequential", {"fast_path": False}),
    ("threaded", {}),
    ("process", {"workers": 2}),
]


class TestCriticalPath:
    def test_starved_pipeline_hand_computed(self):
        report, summary = run_with_profile(build_starved_pipeline)
        assert report.finish_time == 13
        assert report.path_total() == 13
        cats = report.by_category()
        assert cats[COMPUTE] == 12
        assert cats[BLOCKED_ON_DEQUEUE] == 1
        assert cats[BLOCKED_ON_ENQUEUE] == 0
        assert report.by_channel() == {"c": 1}
        # The starvation segment is the first on the path.
        first = report.segments[0]
        assert (first.category, first.channel, first.start, first.end) == (
            BLOCKED_ON_DEQUEUE, "c", 0, 1
        )
        assert summary.profile["critical_path"]["total"] == 13

    def test_backpressured_pipeline_hand_computed(self):
        report, _ = run_with_profile(build_backpressured_pipeline)
        assert report.finish_time == 5
        assert report.path_total() == 5
        cats = report.by_category()
        assert cats[COMPUTE] == 0
        assert cats[BLOCKED_ON_DEQUEUE] == 3
        assert cats[BLOCKED_ON_ENQUEUE] == 2
        # The path ping-pongs between the two contexts over channel c.
        assert report.by_channel() == {"c": 5}
        assert {seg.context for seg in report.segments} == {"src", "sink"}

    def test_attribution_accounts_every_context_cycle(self):
        report, _ = run_with_profile(build_starved_pipeline)
        per_context = report.attribution["per_context"]
        assert per_context["src"][COMPUTE] == 6
        assert per_context["src"]["idle"] == 7
        assert per_context["sink"][COMPUTE] == 12
        assert per_context["sink"][BLOCKED_ON_DEQUEUE] == 1
        assert per_context["sink"]["idle"] == 0
        # Every context's categories + idle tile [0, finish_time].
        for totals in per_context.values():
            accounted = sum(totals[cat] for cat in
                            (COMPUTE, BLOCKED_ON_DEQUEUE, BLOCKED_ON_ENQUEUE))
            assert accounted + totals["idle"] == report.finish_time
        assert report.attribution["per_channel"]["c"][BLOCKED_ON_DEQUEUE] == 1

    def test_backpressure_attributed_to_sender(self):
        report, _ = run_with_profile(build_backpressured_pipeline)
        per_context = report.attribution["per_context"]
        # src stalls 2 cycles on each of its two backpressured enqueues
        # (t=0->2 and t=2->4); sink's three dequeues wait 1+2+2 cycles.
        assert per_context["src"][BLOCKED_ON_ENQUEUE] == 4
        assert per_context["sink"][BLOCKED_ON_DEQUEUE] == 5

    @pytest.mark.parametrize("executor,kwargs", ALL_EXECUTOR_LEGS)
    def test_diamond_attribution_identical_across_executors(
        self, executor, kwargs
    ):
        reference, _ = run_with_profile(build_diamond)
        report, summary = run_with_profile(build_diamond, executor, **kwargs)
        assert report.to_dict() == reference.to_dict(), (
            f"{executor} {kwargs} produced a different profile"
        )
        assert summary.profile == reference.to_dict()

    def test_diamond_critical_path_runs_through_slow_branch(self):
        report, _ = run_with_profile(build_diamond)
        assert report.path_total() == report.finish_time
        # slow's 4 items at ii=6 (first dequeue lands at t=2) bound the
        # makespan at 26: 24 cycles of slow compute plus the two delivery
        # hops (feed into split, slow_in into slow) that started it.
        assert report.finish_time == 26
        by_context = report.by_context()
        assert by_context["slow"] == 25
        assert "fast" not in by_context
        assert report.by_channel() == {"feed": 1, "slow_in": 1}
        # The join's starvation on the slow branch shows up in whole-run
        # attribution (it waits off the critical path); the fast branch
        # never starves anyone.
        per_channel = report.attribution["per_channel"]
        assert (
            per_channel["slow_out"][BLOCKED_ON_DEQUEUE]
            > per_channel["fast_out"][BLOCKED_ON_DEQUEUE]
        )

    def test_timeline_epochs_tile_the_run(self):
        report, _ = run_with_profile(build_starved_pipeline)
        epochs = report.timeline["epochs"]
        assert len(epochs) == 32
        width = report.timeline["epoch_width"]
        assert width * len(epochs) == pytest.approx(report.finish_time)
        # Active simulated time across epochs == total compute across contexts.
        total_active = sum(e["active"] for e in epochs)
        assert total_active == pytest.approx(6 + 12)
        assert all(0.0 <= e["utilization"] <= 1.0 for e in epochs)

    def test_segment_quantiles_present(self):
        report, _ = run_with_profile(build_starved_pipeline)
        quant = report.segment_quantiles
        assert quant["max"] == 4  # the longest sink compute span
        assert quant["p50"] >= 1

    def test_empty_trace_profiles_to_zero(self):
        report = profile_trace([])
        assert report.finish_time == 0
        assert report.segments == []


class TestRoundTrips:
    def test_chrome_trace_round_trip_matches_in_process(self, tmp_path):
        obs = Observability()
        build_starved_pipeline().run(config=RunConfig(obs=obs))
        path = obs.write_chrome_trace(tmp_path / "run.json")
        events, channels = events_from_chrome_trace(json.loads(path.read_text()))
        rebuilt = profile_trace(events, channel_meta=channels)
        assert rebuilt.to_dict() == obs.profile_report.to_dict()

    def test_report_dict_round_trip(self):
        report, _ = run_with_profile(build_backpressured_pipeline)
        rebuilt = ProfileReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()

    def test_describe_states_the_telescoping_sum(self):
        report, _ = run_with_profile(build_starved_pipeline)
        text = report.describe()
        assert "path sum=13 finish_time=13" in text


class TestDiff:
    def test_identical_profiles_are_ok(self):
        report, _ = run_with_profile(build_starved_pipeline)
        diff = diff_profiles(report.to_dict(), report.to_dict())
        assert diff["ok"] and not diff["regressions"]

    def test_regression_flagged_beyond_tolerance(self):
        report, _ = run_with_profile(build_starved_pipeline)
        base = report.to_dict()
        worse = json.loads(json.dumps(base))
        worse["finish_time"] = base["finish_time"] * 5
        worse["critical_path"]["by_category"][COMPUTE] *= 5
        diff = diff_profiles(base, worse, tolerance=3.0)
        assert not diff["ok"]
        flagged = {row["metric"] for row in diff["regressions"]}
        assert "finish_time" in flagged
        assert f"critical_path.{COMPUTE}" in flagged

    def test_small_growth_within_tolerance_passes(self):
        report, _ = run_with_profile(build_starved_pipeline)
        base = report.to_dict()
        slightly = json.loads(json.dumps(base))
        slightly["finish_time"] = base["finish_time"] * 2
        diff = diff_profiles(base, slightly, tolerance=3.0)
        assert diff["ok"]


class TestCli:
    def test_report_command_prints_critical_path(self, tmp_path, capsys):
        obs = Observability()
        build_starved_pipeline().run(config=RunConfig(obs=obs))
        path = obs.write_chrome_trace(tmp_path / "run.json")
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "path sum=13 finish_time=13" in out

    def test_diff_command_exit_codes(self, tmp_path, capsys):
        report, _ = run_with_profile(build_starved_pipeline)
        base = tmp_path / "base.json"
        base.write_text(json.dumps(report.to_dict()))
        worse_dict = report.to_dict()
        worse_dict["finish_time"] *= 10
        worse_dict["critical_path"]["by_category"][COMPUTE] *= 10
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(worse_dict))
        assert obs_main(["diff", str(base), str(base)]) == 0
        assert obs_main(["diff", str(base), str(worse)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out

    def test_report_on_spmspm_sums_to_finish_time(self, tmp_path, capsys):
        """The acceptance criterion: on the spmspm SAM kernel the printed
        critical path's segment durations sum to ``finish_time``."""
        from repro.sam import CsfTensor
        from repro.sam.graphs import build_spmspm
        from repro.sam.tensor import random_dense

        b = random_dense(6, 6, density=0.3, seed=23)
        ct = random_dense(6, 6, density=0.3, seed=24)
        kernel = build_spmspm(
            CsfTensor.from_dense(b, "cc"),
            CsfTensor.from_dense(ct, "cc"),
            depth=4,
        )
        obs = Observability()
        summary = kernel.run(config=RunConfig(obs=obs))
        path = obs.write_chrome_trace(tmp_path / "spmspm.json")
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"path sum={summary.elapsed_cycles} " \
               f"finish_time={summary.elapsed_cycles}" in out
        # And the in-process report agrees exactly.
        report = obs.profile_report
        assert report.path_total() == pytest.approx(summary.elapsed_cycles)
