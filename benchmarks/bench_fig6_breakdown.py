"""Fig. 6 — breakdown of the attention simulation speedup.

Paper: the DAM-over-Spatial speedup decomposes into a language-difference
factor (Rust vs the Scala simulator, measured by restricting DAM to
single-threaded cycle-by-cycle execution) and a framework-parallelism
factor (restricted-DAM vs full DAM, ~8.65x in the paper / 11.2x on the
artifact machine).

Reproduction mapping (single-core Python): "restricted DAM" is the
sequential executor forced to emulate cycle-by-cycle execution — depth-1
channels and a boosting fair policy with a one-op timeslice (yield after
every operation).  The abstraction factor (cycle engine vs restricted
DAM) plays the paper's language factor; the framework factor is
restricted DAM vs full DAM (run-to-block scheduling + local time
acceleration + deep channels).
"""

import numpy as np
from conftest import report

from repro.attention import build_standard_attention, run_cycle_standard_attention
from repro.bench import TextTable
from repro.core import FairPolicy, SequentialExecutor

SEQ_LEN = 48
HEAD_DIM = 16
SCORE_II = HEAD_DIM


def inputs(seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((SEQ_LEN, HEAD_DIM)) * 0.25,
        rng.standard_normal((SEQ_LEN, HEAD_DIM)) * 0.25,
        rng.standard_normal((SEQ_LEN, HEAD_DIM)),
    )


def run_restricted_dam(q, k, v):
    """DAM restricted to emulate single-threaded cycle-by-cycle execution."""
    pipeline = build_standard_attention(
        q, k, v, small_depth=1, score_ii=SCORE_II
    )
    executor = SequentialExecutor(policy=FairPolicy(timeslice=1, boost=True))
    return executor.execute(pipeline.program)


def run_full_dam(q, k, v):
    pipeline = build_standard_attention(q, k, v, score_ii=SCORE_II)
    return pipeline.run()


def test_fig6_breakdown(benchmark):
    q, k, v = inputs()
    cycle_s = min(
        run_cycle_standard_attention(q, k, v, score_ii=SCORE_II)[1].real_seconds
        for _ in range(3)
    )
    restricted_s = min(run_restricted_dam(q, k, v).real_seconds for _ in range(3))
    full_s = min(run_full_dam(q, k, v).real_seconds for _ in range(3))

    abstraction_factor = cycle_s / restricted_s
    framework_factor = restricted_s / full_s
    total = cycle_s / full_s

    table = TextTable(
        ["stage", "real_s", "factor"],
        title=(
            "Fig. 6 (mapped): speedup breakdown on standard attention, "
            f"N={SEQ_LEN}\npaper: total = language diff x framework "
            "parallelism (~8.65x)"
        ),
    )
    table.add_row("cycle-by-cycle engine (Spatial role)", cycle_s, 1.0)
    table.add_row(
        "restricted DAM (depth-1, yield-per-op)", restricted_s, abstraction_factor
    )
    table.add_row("full DAM (fifo, accel, deep channels)", full_s, framework_factor)
    table.add_row("TOTAL", "", total)
    report("fig6_breakdown", table.render())

    # Shape: the framework restrictions cost real time, so lifting them
    # is a genuine >1 factor, and the total multiplies through.
    assert framework_factor > 1.0
    assert total > 1.0
    benchmark.pedantic(lambda: run_full_dam(q, k, v), rounds=3, iterations=1)


def test_fig6_restricted_dam_timing(benchmark):
    q, k, v = inputs()
    benchmark.pedantic(lambda: run_restricted_dam(q, k, v), rounds=2, iterations=1)
