"""Fig. 8 — original SAM simulator vs SAM-on-DAM across kernels/sizes.

Paper datasets: uniformly random sparsity — MMAdd 50% nnz, SpMSpM 10%,
SDDMM 30%, MHA 40% (batch 8, heads 8, seqlen 64..512); speedups 31.2x up
to four orders of magnitude, growing with problem size for everything but
SDDMM; some baseline runs aborted after two days.

Reproduction: the "original SAM" role is played by
:mod:`repro.samlegacy` (cycle-based, same stream semantics — outputs are
asserted equal).  Sizes are scaled; the shape under test is DAM faster on
every kernel with the advantage growing with size.
"""

import numpy as np
from conftest import report

from repro.bench import TextTable
from repro.sam import CsfTensor
from repro.sam.primitives import TimingParams
from repro.sam.graphs import build_mmadd, build_sddmm, build_sparse_mha, build_spmspm
from repro.sam.tensor import random_dense
from repro.samlegacy import (
    build_legacy_mmadd,
    build_legacy_sddmm,
    build_legacy_sparse_mha,
    build_legacy_spmspm,
)


def mha_inputs(seq_len, heads=2, d=4, density=0.4, seed=0):
    rng = np.random.default_rng(seed)
    mask = (rng.random((heads, seq_len, seq_len)) < density).astype(float)
    for h in range(heads):
        np.fill_diagonal(mask[h], 1.0)
    return (
        mask,
        rng.standard_normal((heads, seq_len, d)),
        rng.standard_normal((heads, seq_len, d)),
        rng.standard_normal((heads, seq_len, d)),
    )


#: Multi-cycle primitive blocks (the CGRA's memory/compute units are not
#: single-cycle); the idle ticks this creates are what the cycle-based
#: baseline pays for and DAM's local time acceleration skips.
BLOCK_II = 4
TIMING = TimingParams(ii=BLOCK_II)


def workload(kind, size, seed=0):
    """Return (run_legacy, run_dam) callables producing dense outputs."""
    if kind == "MMAdd":  # 50% nonzeros
        a = random_dense(size, size, density=0.5, seed=seed)
        b = random_dense(size, size, density=0.5, seed=seed + 1)

        def legacy():
            kernel = build_legacy_mmadd(
                CsfTensor.from_dense(a, "cc"),
                CsfTensor.from_dense(b, "cc"),
                ii=BLOCK_II,
            )
            kernel.run()
            return kernel.result_dense()

        def dam():
            kernel = build_mmadd(
                CsfTensor.from_dense(a, "cc"),
                CsfTensor.from_dense(b, "cc"),
                timing=TIMING,
            )
            kernel.run()
            return kernel.result_dense()

    elif kind == "SpMSpM":  # 10% nonzeros
        a = random_dense(size, size, density=0.1, seed=seed)
        bt = random_dense(size, size, density=0.1, seed=seed + 1)

        def legacy():
            kernel = build_legacy_spmspm(
                CsfTensor.from_dense(a, "cc"),
                CsfTensor.from_dense(bt, "cc"),
                ii=BLOCK_II,
            )
            kernel.run()
            return kernel.result_dense()

        def dam():
            kernel = build_spmspm(
                CsfTensor.from_dense(a, "cc"),
                CsfTensor.from_dense(bt, "cc"),
                timing=TIMING,
            )
            kernel.run()
            return kernel.result_dense()

    elif kind == "SDDMM":  # 30% nonzeros
        s = random_dense(size, size, density=0.3, seed=seed)
        a = random_dense(size, 8, density=1.0, seed=seed + 1)
        b = random_dense(size, 8, density=1.0, seed=seed + 2)

        def legacy():
            kernel = build_legacy_sddmm(CsfTensor.from_dense(s, "cc"), a, b, ii=BLOCK_II)
            kernel.run()
            return kernel.result_dense()

        def dam():
            kernel = build_sddmm(CsfTensor.from_dense(s, "cc"), a, b, timing=TIMING)
            kernel.run()
            return kernel.result_dense()

    elif kind == "MHA":  # 40% nonzeros
        mask, q, k, v = mha_inputs(size, seed=seed)

        def legacy():
            kernel = build_legacy_sparse_mha(
                CsfTensor.from_dense(mask, "dcc"), q, k, v, ii=BLOCK_II
            )
            kernel.run()
            return kernel.result_dense()

        def dam():
            kernel = build_sparse_mha(
                CsfTensor.from_dense(mask, "dcc"), q, k, v, timing=TIMING
            )
            kernel.run()
            return kernel.result_dense()

    else:
        raise ValueError(kind)
    return legacy, dam


SWEEP = [
    ("MMAdd", [8, 16, 32]),
    ("SpMSpM", [8, 16, 24]),
    ("SDDMM", [8, 16, 24]),
    ("MHA", [6, 10, 14]),
]


def run_sweep():
    table = TextTable(
        ["kernel", "size", "legacy_s", "dam_s", "speedup"],
        title=(
            "Fig. 8 (scaled): original-SAM-style cycle simulator vs SAM on "
            "DAM\npaper: 31.2x .. 4 orders of magnitude, growing with size"
        ),
    )
    per_kernel = {}
    for kind, sizes in SWEEP:
        speedups = []
        for size in sizes:
            legacy, dam = workload(kind, size)
            legacy_out = legacy()
            dam_out = dam()
            # Interleaved min-of-3: millisecond workloads on a shared
            # single-core box need it (see EXPERIMENTS.md).
            legacy_times, dam_times = [], []
            for _ in range(3):
                legacy_times.append(_time(legacy))
                dam_times.append(_time(dam))
            legacy_s = min(legacy_times)
            dam_s = min(dam_times)
            assert np.allclose(legacy_out, dam_out), (kind, size)
            speedup = legacy_s / dam_s
            speedups.append(speedup)
            table.add_row(kind, size, legacy_s, dam_s, speedup)
        per_kernel[kind] = speedups
    report("fig8_sam_vs_dam", table.render())
    return per_kernel


def _time(fn):
    import time

    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_fig8_dam_beats_legacy_everywhere(benchmark):
    per_kernel = run_sweep()
    for kind, speedups in per_kernel.items():
        # DAM wins at the largest (least noise-dominated) size of every
        # kernel, and on balance across the sweep.
        assert speedups[-1] > 1.0, (kind, speedups)
        geomean = np.prod(speedups) ** (1.0 / len(speedups))
        assert geomean > 1.0, (kind, speedups)
    # Advantage grows with size (the paper: all kernels except SDDMM).
    # Single-core timers are noisy at millisecond scales, so the growth
    # assertion targets the structurally strongest case (SpMSpM, whose
    # intersection idle time scales with the crossing count); the full
    # per-kernel series is in the printed table.
    spmspm = per_kernel["SpMSpM"]
    assert spmspm[-1] > spmspm[0] * 1.2, spmspm
    legacy, dam = workload("SpMSpM", 16)
    benchmark.pedantic(dam, rounds=3, iterations=1)


def test_fig8_legacy_baseline_timing(benchmark):
    legacy, _ = workload("SpMSpM", 16)
    benchmark.pedantic(legacy, rounds=2, iterations=1)
