"""repro — a Python reproduction of the Dataflow Abstract Machine (DAM).

DAM (ISCA 2024) is a parallel simulator framework for dataflow systems
built on three ideas: a CSP-with-time (CSPT) programming interface,
asynchronous distributed time with pairwise synchronization, and
time-bridging channels.  This package reimplements the framework and every
substrate its evaluation depends on — see DESIGN.md for the inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import Context, IncrCycles, ProgramBuilder

    class Doubler(Context):
        def __init__(self, inp, out):
            super().__init__()
            self.inp, self.out = inp, out
            self.register(inp, out)

        def run(self):
            while True:
                value = yield self.inp.dequeue()
                yield IncrCycles(1)
                yield self.out.enqueue(2 * value)

See ``examples/quickstart.py`` for a complete runnable program.
"""

from .core import (
    INFINITY,
    AdvanceTo,
    Channel,
    ChannelClosed,
    ChannelElement,
    CheckpointError,
    Context,
    ContextFault,
    DamError,
    DeadlockError,
    Dequeue,
    Enqueue,
    FaultInjected,
    FaultPlan,
    FunctionContext,
    GraphConstructionError,
    IncrCycles,
    NotCheckpointable,
    Peek,
    Program,
    ProgramBuilder,
    Receiver,
    RunTimeoutError,
    Sender,
    ShuttleStall,
    SimulationError,
    Time,
    TimeCell,
    ViewTime,
    WaitUntil,
    WorkerCrashError,
    WorkerKill,
    make_channel,
    peak_simulated_occupancy,
)
from .obs import (
    MetricsRegistry,
    Observability,
    StallReport,
    TraceCollector,
    TraceEvent,
)

# Executor machinery resolves lazily through repro.core (PEP 562): a bare
# ``import repro`` must not import any runtime, so ``Program.run`` can
# report an unknown executor — or pick one — without the import cost.
# The spec/serve layer resolves lazily too (it pulls in numpy and the
# kernel-graph modules).  ``repro.api`` documents which of these names
# are the stable public surface.
_LAZY_EXECUTOR = {
    "Checkpoint",
    "CheckpointTimer",
    "latest_checkpoint",
    "load_checkpoint",
    "Executor",
    "RunSummary",
    "RunConfig",
    "register_executor",
    "registered_names",
    "resolve_executor",
    "FairPolicy",
    "FifoPolicy",
    "SequentialExecutor",
    "ThreadedExecutor",
    "FreeThreadedExecutor",
    "ProcessExecutor",
    "PartitionPlan",
    "ClusterSpec",
    "channel_weights",
    "plan_partition",
    "plan_clusters",
}


_LAZY_SPEC = {
    "ProgramSpec",
    "SpecError",
    "build_spec",
    "encode_tensor",
    "decode_tensor",
    "register_graph",
    "registered_graphs",
}

_LAZY_MODULES = {"api", "serve", "sam"}


def __getattr__(name: str):
    from importlib import import_module

    if name in _LAZY_EXECUTOR:
        value = getattr(import_module(".core", __name__), name)
    elif name in _LAZY_SPEC:
        value = getattr(import_module(".sam.spec", __name__), name)
    elif name in _LAZY_MODULES:
        value = import_module(f".{name}", __name__)
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | _LAZY_EXECUTOR | _LAZY_SPEC | _LAZY_MODULES)


__version__ = "1.0.0"

__all__ = [
    "INFINITY",
    "AdvanceTo",
    "Channel",
    "ChannelClosed",
    "ChannelElement",
    "Checkpoint",
    "CheckpointError",
    "CheckpointTimer",
    "Context",
    "ContextFault",
    "DamError",
    "DeadlockError",
    "Dequeue",
    "Enqueue",
    "FairPolicy",
    "FaultInjected",
    "FaultPlan",
    "FifoPolicy",
    "FreeThreadedExecutor",
    "FunctionContext",
    "GraphConstructionError",
    "IncrCycles",
    "MetricsRegistry",
    "NotCheckpointable",
    "Observability",
    "PartitionPlan",
    "Peek",
    "ProcessExecutor",
    "Program",
    "ProgramBuilder",
    "ProgramSpec",
    "Receiver",
    "RunConfig",
    "RunSummary",
    "RunTimeoutError",
    "Sender",
    "SequentialExecutor",
    "ShuttleStall",
    "SimulationError",
    "SpecError",
    "StallReport",
    "ThreadedExecutor",
    "WorkerCrashError",
    "WorkerKill",
    "register_executor",
    "registered_names",
    "resolve_executor",
    "Time",
    "TimeCell",
    "TraceCollector",
    "TraceEvent",
    "ViewTime",
    "WaitUntil",
    "api",
    "build_spec",
    "channel_weights",
    "decode_tensor",
    "encode_tensor",
    "latest_checkpoint",
    "load_checkpoint",
    "make_channel",
    "peak_simulated_occupancy",
    "plan_partition",
    "register_graph",
    "registered_graphs",
    "serve",
    "__version__",
]
