"""Tests for the legacy cycle-based SAM simulator.

The legacy simulator must produce *identical outputs* to SAM-on-DAM (same
stream semantics, different runtime) — the property the paper relies on
when comparing the two (Fig. 8's "simulation results were equivalent").
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cyclesim import CycleChannel, CycleEngine
from repro.sam import CsfTensor
from repro.sam.graphs import build_mmadd, build_sddmm, build_sparse_mha, build_spmspm
from repro.sam.reference import sddmm as ref_sddmm
from repro.sam.reference import sparse_mha as ref_mha
from repro.sam.tensor import CompressedLevel, random_dense
from repro.sam.token import DONE, REPEAT, Stop
from repro.samlegacy import (
    build_legacy_mmadd,
    build_legacy_sddmm,
    build_legacy_sparse_mha,
    build_legacy_spmspm,
)
from repro.samlegacy.primitives import (
    LegacyFiberLookup,
    LegacyRepeat,
    LegacyStreamSink,
    LegacyStreamSource,
)

S0, S1 = Stop(0), Stop(1)


def run_legacy_block(make_block, inputs, n_outputs, depth=2):
    """Legacy analog of repro.sam.testing.run_block."""
    engine = CycleEngine()
    in_channels = []
    for index, tokens in enumerate(inputs):
        channel = engine.channel(depth, name=f"in{index}")
        engine.add(LegacyStreamSource(channel, tokens, name=f"src{index}"))
        in_channels.append(channel)
    out_channels = [engine.channel(depth, name=f"out{i}") for i in range(n_outputs)]
    engine.add(make_block(in_channels, out_channels))
    sinks = [
        engine.add(LegacyStreamSink(ch, name=f"sink{i}"))
        for i, ch in enumerate(out_channels)
    ]
    engine.run()
    return [sink.tokens for sink in sinks]


class TestLegacyPrimitives:
    def test_scanner_matches_dam_semantics(self):
        level = CompressedLevel(seg=[0, 2, 2, 5], crd=[1, 4, 0, 2, 3])
        crd, ref = run_legacy_block(
            lambda ins, outs: LegacyFiberLookup(level, ins[0], outs[0], outs[1]),
            [[0, 2, S0, DONE]],
            2,
        )
        assert crd == [1, 4, S0, 0, 2, 3, S1, DONE]
        assert ref == [0, 1, S0, 2, 3, 4, S1, DONE]

    def test_repeat_matches_dam_semantics(self):
        (out,) = run_legacy_block(
            lambda ins, outs: LegacyRepeat(ins[0], ins[1], outs[0]),
            [
                [10, 20, S0, DONE],
                [REPEAT, REPEAT, S0, REPEAT, S1, DONE],
            ],
            1,
        )
        assert out == [10, 10, S0, 20, S1, DONE]

    def test_depth_one_channels_still_complete(self):
        level = CompressedLevel(seg=[0, 3], crd=[0, 1, 2])
        crd, ref = run_legacy_block(
            lambda ins, outs: LegacyFiberLookup(level, ins[0], outs[0], outs[1]),
            [[0, DONE]],
            2,
            depth=1,
        )
        assert crd == [0, 1, 2, S0, DONE]


class TestLegacyKernels:
    def test_mmadd_matches_dam(self):
        a = random_dense(6, 8, density=0.5, seed=1)
        b = random_dense(6, 8, density=0.5, seed=2)
        ta, tb = CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
        dam = build_mmadd(ta, tb)
        dam.run()
        ta2, tb2 = CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
        legacy = build_legacy_mmadd(ta2, tb2)
        legacy.run()
        assert np.allclose(dam.result_dense(), legacy.result_dense())
        assert np.allclose(legacy.result_dense(), a + b)

    def test_spmspm_matches_dam(self):
        b = random_dense(5, 6, density=0.4, seed=3)
        ct = random_dense(7, 6, density=0.4, seed=4)
        legacy = build_legacy_spmspm(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(ct, "cc")
        )
        legacy.run()
        assert np.allclose(legacy.result_dense(), b @ ct.T)

    def test_sddmm_matches_reference(self):
        s = random_dense(5, 7, density=0.3, seed=5)
        a = random_dense(5, 4, density=1.0, seed=6)
        b = random_dense(7, 4, density=1.0, seed=7)
        legacy = build_legacy_sddmm(CsfTensor.from_dense(s, "cc"), a, b)
        legacy.run()
        assert np.allclose(legacy.result_dense(), ref_sddmm(s, a, b))

    def test_mha_matches_reference(self):
        rng = np.random.default_rng(0)
        H, N, d = 2, 8, 4
        mask = (rng.random((H, N, N)) < 0.4).astype(float)
        for h in range(H):
            np.fill_diagonal(mask[h], 1.0)
        q = rng.standard_normal((H, N, d))
        k = rng.standard_normal((H, N, d))
        v = rng.standard_normal((H, N, d))
        legacy = build_legacy_sparse_mha(CsfTensor.from_dense(mask, "dcc"), q, k, v)
        legacy.run()
        assert np.allclose(legacy.result_dense(), ref_mha(q, k, v, mask))

    def test_legacy_is_slower_per_simulated_cycle(self):
        """The structural claim behind Fig. 8: the cycle engine executes
        ticks for every component every cycle, so its tick count dwarfs
        the DAM executor's op count on the same kernel."""
        b = random_dense(8, 8, density=0.3, seed=8)
        ct = random_dense(8, 8, density=0.3, seed=9)
        dam = build_spmspm(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(ct, "cc")
        )
        dam_summary = dam.run()
        legacy = build_legacy_spmspm(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(ct, "cc")
        )
        legacy_stats = legacy.run()
        assert legacy_stats.ticks > dam_summary.ops_executed

    @settings(max_examples=8, deadline=None)
    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        da=st.floats(0.1, 1.0),
        db=st.floats(0.1, 1.0),
        seed=st.integers(0, 40),
    )
    def test_property_mmadd_dam_legacy_agree(self, rows, cols, da, db, seed):
        a = random_dense(rows, cols, density=da, seed=seed)
        b = random_dense(rows, cols, density=db, seed=seed + 500)
        dam = build_mmadd(
            CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
        )
        dam.run()
        legacy = build_legacy_mmadd(
            CsfTensor.from_dense(a, "cc"), CsfTensor.from_dense(b, "cc")
        )
        legacy.run()
        assert np.allclose(dam.result_dense(), legacy.result_dense())
