"""Fig. 12 — time-multiplexed virtual devices: real time-per-batch.

Paper: a synthetic PyTorch model over {1..8} virtual GPUs multiplexed on
{1, 2, 4} physical T4s (clocks locked); average time-per-batch stays
within 10% of baseline as virtual devices increase, and its standard
deviation *decreases* with more virtual devices (steadier loading).

Reproduction: physical devices are lock-guarded numpy compute resources
(GIL-releasing matmuls) per the DESIGN.md substitution; same metric, same
sweep shape at container scale.
"""

from conftest import report

from repro.bench import TextTable
from repro.multiplex import run_multiplex_experiment

SWEEP = [
    (1, 1),
    (2, 1),
    (4, 1),
    (2, 2),
    (4, 2),
    (8, 2),
]


def run_sweep():
    table = TextTable(
        ["config (v/p)", "mean_us_per_batch", "std_us", "samples", "task_loads"],
        title=(
            "Fig. 12 (scaled): real time-per-batch across virtual/physical "
            "device configurations\npaper: mean within 10% of baseline; std "
            "shrinks with more virtual devices"
        ),
    )
    results = []
    for virtual, physical in SWEEP:
        result = run_multiplex_experiment(
            virtual=virtual,
            physical=physical,
            batches=6,
            batch_size=48,
            work_dim=96,
        )
        results.append(result)
        table.add_row(
            result.label(),
            result.mean_seconds * 1e6,
            result.std_seconds * 1e6,
            result.samples,
            result.device_loads,
        )
    report("fig12_multiplex", table.render())
    return results


def test_fig12_multiplexing_is_stable(benchmark):
    results = run_sweep()
    # Every configuration completes all its batches on real hardware.
    for result in results:
        assert result.samples == result.virtual * 6
        assert result.mean_seconds > 0
    # Multiplexing keeps the mean in the same order of magnitude as the
    # unshared baseline (the paper: within 10% on locked-clock GPUs; a
    # shared CPU container is noisier, so the bound is looser here).
    baseline = results[0].mean_seconds
    for result in results:
        assert result.mean_seconds < baseline * 10
    benchmark.pedantic(
        lambda: run_multiplex_experiment(2, 1, batches=4, batch_size=32, work_dim=64),
        rounds=2,
        iterations=1,
    )
