"""Legacy broadcast: cycle-based stream fanout.

All branches must have space before the copy fires, so one slow branch
stalls the fanout — the same hardware-faithful behaviour as the DAM
version, expressed as a per-cycle readiness check.
"""

from __future__ import annotations

from typing import Sequence

from ...cyclesim.channel import CycleChannel
from ...sam.token import DONE
from ..base import LegacySamPrimitive


class LegacyBroadcast(LegacySamPrimitive):
    def __init__(
        self,
        inp: CycleChannel,
        outs: Sequence[CycleChannel],
        name: str | None = None,
        ii: int = 1,
    ):
        if not outs:
            raise ValueError("LegacyBroadcast needs at least one output")
        super().__init__(name=name, ii=ii)
        self.inp = inp
        self.outs = list(outs)

    def tick(self, cycle: int) -> None:
        if self.finished or self.stalled():
            return
        if not self.inp.can_pop():
            return
        if not all(out.can_push() for out in self.outs):
            return
        token = self.inp.pop()
        self.charge()
        for out in self.outs:
            out.push(token)
        if token is DONE:
            self.finished = True
