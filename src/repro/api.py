"""The stable public API of ``repro`` — one import surface, one contract.

Everything re-exported here is **public and stable**: wire formats
round-trip across versions, constructors keep their signatures, and
behavior changes arrive with deprecation windows.  Code that sticks to
``repro.api`` (or the same names on the top-level ``repro`` package)
will not break between releases.

The stable surface, by layer:

* **Authoring** — :class:`Context`, :class:`FunctionContext`,
  :class:`ProgramBuilder`, :class:`Program`, the simulation commands
  (:class:`Enqueue`, :class:`Dequeue`, :class:`Peek`,
  :class:`IncrCycles`, ...), and :func:`make_channel`.
* **Execution** — :class:`RunConfig` (with its strict
  ``to_dict``/``from_dict`` wire format), :class:`RunSummary` (idem),
  ``Program.run(executor, config=...)``, and the executor registry
  (:func:`register_executor`, :func:`registered_names`,
  :func:`resolve_executor`).
* **Specs** — :class:`ProgramSpec` / :func:`build_spec` /
  :func:`register_graph`: declarative, JSON-serializable run requests
  over the named kernel-graph registry, plus
  :func:`encode_tensor`/:func:`decode_tensor` for payloads.
* **Serving** — the :mod:`repro.serve` package (re-exported whole):
  :class:`~repro.serve.SimServer`, :class:`~repro.serve.ServeClient`,
  :class:`~repro.serve.ServeConfig`, :class:`~repro.serve.TenantPolicy`,
  and the typed admission errors.
* **Observability** — :class:`Observability`, :class:`MetricsRegistry`,
  :class:`TraceCollector`, :class:`StallReport`.
* **Errors** — the :class:`DamError` hierarchy
  (:class:`DeadlockError`, :class:`RunTimeoutError`,
  :class:`WorkerCrashError`, :class:`SpecError`,
  :class:`AdmissionError`, :class:`TenantBudgetError`, ...).

Everything else — module paths under ``repro.core.executor.*``, channel
internals, partition planners, shared-memory rings, the superblock
compiler — is **internal**: importable for experimentation, liable to
move without notice.  If an internal helper earns real external use,
promote it here first.
"""

from __future__ import annotations

from . import serve
from .core import (
    Channel,
    ChannelClosed,
    ChannelElement,
    Context,
    DamError,
    DeadlockError,
    Dequeue,
    Enqueue,
    FaultPlan,
    FunctionContext,
    GraphConstructionError,
    IncrCycles,
    Peek,
    Program,
    ProgramBuilder,
    Receiver,
    RunConfig,
    RunSummary,
    RunTimeoutError,
    Sender,
    SimulationError,
    WorkerCrashError,
    make_channel,
    register_executor,
    registered_names,
    resolve_executor,
)
from .obs import MetricsRegistry, Observability, StallReport, TraceCollector
from .sam.spec import (
    ProgramSpec,
    SpecError,
    build_spec,
    decode_tensor,
    encode_tensor,
    register_graph,
    registered_graphs,
)
from .serve import (
    AdmissionError,
    ServeClient,
    ServeConfig,
    ServeError,
    SimServer,
    TenantBudgetError,
    TenantPolicy,
)

__all__ = [
    # authoring
    "Channel",
    "ChannelClosed",
    "ChannelElement",
    "Context",
    "Dequeue",
    "Enqueue",
    "FunctionContext",
    "IncrCycles",
    "Peek",
    "Program",
    "ProgramBuilder",
    "Receiver",
    "Sender",
    "make_channel",
    # execution
    "FaultPlan",
    "RunConfig",
    "RunSummary",
    "register_executor",
    "registered_names",
    "resolve_executor",
    # specs
    "ProgramSpec",
    "build_spec",
    "decode_tensor",
    "encode_tensor",
    "register_graph",
    "registered_graphs",
    # serving
    "AdmissionError",
    "ServeClient",
    "ServeConfig",
    "SimServer",
    "TenantBudgetError",
    "TenantPolicy",
    "serve",
    # observability
    "MetricsRegistry",
    "Observability",
    "StallReport",
    "TraceCollector",
    # errors
    "DamError",
    "DeadlockError",
    "GraphConstructionError",
    "RunTimeoutError",
    "ServeError",
    "SimulationError",
    "SpecError",
    "WorkerCrashError",
]
