"""Virtual devices: simulated hardware backed by multiplexed real compute.

This is the paper's Listing 4 as a DAM context: lock a physical device
(unfair preference for the last one used), load the task if needed, run
the real batch, record the real time, and advance *simulated* time by the
performance estimate.  While one virtual device holds the lock, the OS
schedules other (unblocked) contexts — including other virtual devices on
other physical devices.
"""

from __future__ import annotations

import numpy as np

from ..core.channel import Receiver, Sender
from ..core.context import Context
from ..core.errors import ChannelClosed
from ..core.ops import IncrCycles
from .device import DevicePool


class VirtualDevice(Context):
    """A simulated accelerator executing real batches on a shared pool.

    Consumes batches (numpy arrays) from ``inp``, produces result
    summaries on ``out``; ``task_id`` identifies this virtual device's
    model weights (equal task ids share resident state on a physical
    device, skipping stash/load).  ``cycles_per_batch`` is the simulated
    performance estimate.  Real time per batch (the Fig. 12 metric) is
    appended to :attr:`batch_seconds`.
    """

    def __init__(
        self,
        inp: Receiver,
        out: Sender,
        pool: DevicePool,
        task_id: int,
        cycles_per_batch: int = 100,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.inp = inp
        self.out = out
        self.pool = pool
        self.task_id = task_id
        self.cycles_per_batch = cycles_per_batch
        self.batch_seconds: list[float] = []
        self._preferred: int | None = None
        self.register(inp, out)

    def run(self):
        try:
            while True:
                batch = yield self.inp.dequeue()
                device = self.pool.acquire(self._preferred)
                try:
                    device.ensure_task(self.task_id)
                    output, seconds = device.run_batch(batch)
                finally:
                    device.lock.release()
                self._preferred = device.index
                self.batch_seconds.append(seconds)
                yield IncrCycles(self.cycles_per_batch)
                yield self.out.enqueue(float(np.sum(output)))
        except ChannelClosed:
            return
