"""Legacy SpaccV1: cycle-based sparse accumulator.

Flushing the merged fiber takes one cycle per (crd, val) pair, with the
flush cursor held in state across cycles.
"""

from __future__ import annotations

from ...cyclesim.channel import CycleChannel
from ...sam.token import DONE, Stop
from ..base import LegacySamPrimitive

_CONSUME = 0
_FLUSH = 1
_EMIT_STOP = 2
_EMIT_DONE = 3
_HALT = 4


class LegacySpaccV1(LegacySamPrimitive):
    def __init__(
        self,
        in_crd: CycleChannel,
        in_val: CycleChannel,
        out_crd: CycleChannel,
        out_val: CycleChannel,
        name: str | None = None,
        ii: int = 1,
    ):
        super().__init__(name=name, ii=ii)
        self.in_crd = in_crd
        self.in_val = in_val
        self.out_crd = out_crd
        self.out_val = out_val
        self.accumulator: dict[int, float] = {}
        self.state = _CONSUME
        self.flush_keys: list[int] = []
        self.flush_pos = 0
        self.pending_stop: Stop | None = None

    def _outputs_ready(self) -> bool:
        return self.out_crd.can_push() and self.out_val.can_push()

    def tick(self, cycle: int) -> None:
        if self.stalled():
            return
        if self.state == _HALT:
            self.finished = True
            return

        if self.state == _CONSUME:
            if not (self.in_crd.can_pop() and self.in_val.can_pop()):
                return
            crd = self.in_crd.pop()
            val = self.in_val.pop()
            if crd is DONE:
                if val is not DONE:
                    raise AssertionError(
                        f"{self.name}: crd done before val done"
                    )
                self.state = _EMIT_DONE
                return
            if isinstance(crd, Stop):
                if crd != val:
                    raise AssertionError(
                        f"{self.name}: misaligned stops {crd!r} vs {val!r}"
                    )
                if crd.level == 0:
                    return  # subfiber boundary: keep accumulating
                self.flush_keys = sorted(self.accumulator)
                self.flush_pos = 0
                self.pending_stop = Stop(crd.level - 1)
                self.state = _FLUSH
                return
            self.accumulator[crd] = self.accumulator.get(crd, 0.0) + val
            self.charge()
            return

        if self.state == _FLUSH:
            if self.flush_pos >= len(self.flush_keys):
                self.accumulator.clear()
                self.state = _EMIT_STOP
                return
            if not self._outputs_ready():
                return
            key = self.flush_keys[self.flush_pos]
            self.out_crd.push(key)
            self.out_val.push(self.accumulator[key])
            self.charge()
            self.flush_pos += 1
            return

        if self.state == _EMIT_STOP:
            if not self._outputs_ready():
                return
            self.out_crd.push(self.pending_stop)
            self.out_val.push(self.pending_stop)
            self.charge()
            self.pending_stop = None
            self.state = _CONSUME
            return

        if self.state == _EMIT_DONE:
            if not self._outputs_ready():
                return
            self.out_crd.push(DONE)
            self.out_val.push(DONE)
            self.state = _HALT
            self.finished = True
            return
