"""Legacy cycle-based SAM primitives (original simulator style)."""

from .alu import LegacyBinaryAlu, LegacyUnaryAlu
from .array import LegacyArrayVals
from .broadcast import LegacyBroadcast
from .crd import LegacyCrdHold
from .filter import LegacyValDrop
from .joiner import LegacyIntersect, LegacyUnion
from .reduce import LegacyReduce
from .repeat import LegacyRepeat, LegacyRepeatSigGen
from .scanner import LegacyFiberLookup
from .source import LegacyRootSource, LegacyStreamSource
from .spacc import LegacySpaccV1
from .write import LegacyFiberWrite, LegacyStreamSink, LegacyValsWrite

__all__ = [
    "LegacyFiberLookup",
    "LegacyArrayVals",
    "LegacyRepeat",
    "LegacyRepeatSigGen",
    "LegacyIntersect",
    "LegacyUnion",
    "LegacyBinaryAlu",
    "LegacyUnaryAlu",
    "LegacyReduce",
    "LegacySpaccV1",
    "LegacyCrdHold",
    "LegacyValDrop",
    "LegacyBroadcast",
    "LegacyFiberWrite",
    "LegacyValsWrite",
    "LegacyStreamSink",
    "LegacyRootSource",
    "LegacyStreamSource",
]
