"""Barrier-synchronized parallel event-driven engine (the SST runtime model).

SST parallelizes conservatively: components are partitioned across workers,
and workers synchronize on a global barrier whose period is bounded by the
minimum cross-partition link latency.  An event executed inside the window
``[T, T + L)`` can only create remote events at ``>= T + L``, so windows
are safe — but *every* window costs two global barriers, and the window
shrinks as links get faster.  For tightly-coupled dataflow graphs (latency
1–2 cycles) this means a global barrier every cycle or two, which is the
scaling wall the paper's asynchronous distributed time removes.

This engine exists to be measured against DAM (Fig. 3): it is correct and
deterministic per-worker, and its real-time behaviour exhibits the barrier
overhead structurally, GIL notwithstanding.
"""

from __future__ import annotations

import threading
import time as _wallclock
from typing import Any

from .component import Component
from .engine import Link, SimulationStats
from .event import Event, EventQueue


class _Partition:
    """One worker's component set and locked local event queue."""

    def __init__(self, index: int):
        self.index = index
        self.queue = EventQueue()
        self.lock = threading.Lock()
        self.processed = 0
        self.last_time = 0


class ParallelEngine:
    """Conservative parallel event-driven engine with global barriers.

    Components must be added before links are created with :meth:`link`
    (the engine needs the link inventory to size the conservative window).
    Partitioning is round-robin unless ``partition_of`` is supplied.
    """

    def __init__(self, workers: int = 2, partition_of: dict[str, int] | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.partitions = [_Partition(i) for i in range(workers)]
        self.components: list[Component] = []
        self._component_partition: dict[int, _Partition] = {}
        self._partition_override = partition_of or {}
        self._links: list[Link] = []
        self.now = 0
        self.barriers_executed = 0
        self._window_end = 0
        self._done = False

    # ------------------------------------------------------------------

    def add(self, component: Component) -> Component:
        component.engine = self
        index = self._partition_override.get(
            component.name, len(self.components) % self.workers
        )
        self.components.append(component)
        self._component_partition[component.id] = self.partitions[index]
        return component

    def link(self, dst: Component, port: str, latency: int = 1) -> Link:
        """Create a link whose latency participates in window sizing."""
        link = Link(dst, port, latency)
        self._links.append(link)
        return link

    def schedule_link(self, link: Link, time: int, payload: Any) -> None:
        self._push(Event(time + link.latency, link.dst, link.port, payload))

    def schedule_event(
        self, component: Component, port: str, time: int, payload: Any = None
    ) -> None:
        self._push(Event(time, component, port, payload))

    def _push(self, event: Event) -> None:
        partition = self._component_partition[event.component.id]
        with partition.lock:
            partition.queue.push(event)

    # ------------------------------------------------------------------

    def sync_window(self) -> int:
        """The conservative window: the minimum link latency in the graph."""
        if not self._links:
            return 1
        return min(link.latency for link in self._links)

    def run(self) -> SimulationStats:
        start = _wallclock.perf_counter()
        for component in self.components:
            component.start()
        window = self.sync_window()

        def compute_next_window() -> None:
            self.barriers_executed += 1
            next_time = None
            for partition in self.partitions:
                with partition.lock:
                    head = partition.queue.peek_time()
                if head is not None and (next_time is None or head < next_time):
                    next_time = head
            if next_time is None:
                self._done = True
            else:
                self.now = next_time
                self._window_end = next_time + window

        compute_barrier = threading.Barrier(
            self.workers, action=compute_next_window
        )
        drain_barrier = threading.Barrier(self.workers)
        errors: list[BaseException] = []

        def worker(partition: _Partition) -> None:
            try:
                while True:
                    compute_barrier.wait()
                    if self._done:
                        return
                    while True:
                        with partition.lock:
                            head = partition.queue.peek_time()
                            if head is None or head >= self._window_end:
                                break
                            event = partition.queue.pop()
                        event.component.deliver(
                            event.time, event.port, event.payload
                        )
                        partition.processed += 1
                        partition.last_time = event.time
                    drain_barrier.wait()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
                compute_barrier.abort()
                drain_barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(p,), daemon=True)
            for p in self.partitions
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return SimulationStats(
            final_time=max(p.last_time for p in self.partitions),
            events_processed=sum(p.processed for p in self.partitions),
            real_seconds=_wallclock.perf_counter() - start,
        )
