"""Tests for the Gustavson SpMSpM dataflow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sam import CsfTensor
from repro.sam.graphs import build_spmspm, build_spmspm_gustavson
from repro.sam.tensor import random_dense


class TestGustavson:
    def test_basic(self):
        b = random_dense(6, 5, density=0.4, seed=1)
        c = random_dense(5, 7, density=0.4, seed=2)
        kernel = build_spmspm_gustavson(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(c, "dc")
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), b @ c)

    def test_compressed_k_level_uses_locate(self):
        """With C in 'cc', a Locate stage maps k coordinates to row refs;
        rows of C missing entirely become ABSENT (all-zero) fibers."""
        b = random_dense(6, 5, density=0.5, seed=8)
        c = random_dense(5, 7, density=0.3, seed=9)
        c[2, :] = 0.0  # a row B may reference but C doesn't store
        kernel = build_spmspm_gustavson(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(c, "cc")
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), b @ c)
        assert any(
            ctx.name == "locateK" for ctx in kernel.program.contexts
        )

    def test_inner_dim_checked(self):
        b = CsfTensor.from_dense(np.ones((2, 3)), "cc")
        c = CsfTensor.from_dense(np.ones((4, 2)), "dc")
        with pytest.raises(ValueError, match="inner dimensions"):
            build_spmspm_gustavson(b, c)

    def test_empty_operand(self):
        b = CsfTensor.from_dense(np.zeros((3, 3)), "cc")
        c = CsfTensor.from_dense(random_dense(3, 3, density=0.5, seed=3), "dc")
        kernel = build_spmspm_gustavson(b, c)
        kernel.run()
        assert np.allclose(kernel.result_dense(), np.zeros((3, 3)))

    def test_output_is_compressed(self):
        """Unlike the inner-product build, Gustavson's spacc output keeps
        only coordinates that actually received contributions."""
        b = random_dense(6, 6, density=0.2, seed=4)
        c = random_dense(6, 6, density=0.2, seed=5)
        kernel = build_spmspm_gustavson(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(c, "dc")
        )
        kernel.run()
        stored = len(kernel.vals_writer.vals)
        assert stored == np.count_nonzero(b @ c)

    def test_agrees_with_inner_product_dataflow(self):
        b = random_dense(8, 8, density=0.3, seed=6)
        c = random_dense(8, 8, density=0.3, seed=7)
        gustavson = build_spmspm_gustavson(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(c, "dc")
        )
        gustavson.run()
        inner = build_spmspm(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(c.T, "cc")
        )
        inner.run()
        assert np.allclose(gustavson.result_dense(), inner.result_dense())

    @settings(max_examples=12, deadline=None)
    @given(
        i=st.integers(1, 6),
        k=st.integers(1, 6),
        j=st.integers(1, 6),
        da=st.floats(0.0, 1.0),
        db=st.floats(0.0, 1.0),
        seed=st.integers(0, 50),
    )
    def test_property_matches_numpy(self, i, k, j, da, db, seed):
        b = random_dense(i, k, density=da, seed=seed)
        c = random_dense(k, j, density=db, seed=seed + 2000)
        kernel = build_spmspm_gustavson(
            CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(c, "dc")
        )
        kernel.run()
        assert np.allclose(kernel.result_dense(), b @ c)
