"""Observability for dataflow programs: traces, metrics, stall reports.

The :mod:`repro.obs` package makes a DAM run inspectable on *both*
executors:

1. **Executor-agnostic tracing** — every context appends events to its
   own lock-free buffer; buffers merge deterministically by
   ``(time, context, seq)``, so a threaded run yields the exact same
   merged timeline as a sequential one.
2. **Perfetto export** — the trace renders to Chrome trace-event JSON
   (one track per context, channel ops as slices, transfers as flow
   arrows).  Load the written file at https://ui.perfetto.dev.
3. **Metrics registry** — channel traffic and peak occupancy, per-context
   ops, parks, and wall-clock, folded into ``RunSummary.metrics``.
4. **Stall reports** — on deadlock, the error names every blocked
   context, the channel it is parked on, and the simulated clocks of
   both endpoints: the blocked set *is* the dependency cycle.

Run:  python examples/tracing_and_debugging.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DeadlockError, Observability
from repro.attention import build_standard_attention
from repro.bench import TreeConfig, run_dam_forest


def stall_report_demo():
    print("== deadlock stall reports ==")
    rng = np.random.default_rng(0)
    n, d = 16, 4
    q = rng.standard_normal((n, d)) * 0.4
    k = rng.standard_normal((n, d)) * 0.4
    v = rng.standard_normal((n, d))
    # Undersize the softmax row buffer: the reduction needs the whole row.
    pipeline = build_standard_attention(q, k, v, buffer_depth=4)
    obs = Observability(trace=False)
    try:
        pipeline.program.run(obs=obs)
    except DeadlockError:
        print("  the stall report names each blocked context, its channel,")
        print("  and both endpoint clocks:")
        for line in obs.stall_report.lines():
            print(f"    {line}")


def tracing_demo():
    print()
    print("== executor-agnostic tracing ==")
    config = TreeConfig(trees=2, depth=2, reductions=5, fib_index=3)

    # Trace the SAME workload under both executors.
    obs_seq = Observability(capture_payloads=True)
    run_dam_forest(config, executor="sequential", obs=obs_seq)
    obs_thr = Observability(capture_payloads=True)
    run_dam_forest(config, executor="threaded", obs=obs_thr)

    key = lambda e: (e.time, e.context, e.seq, e.kind, e.channel, e.payload)
    seq_events = [key(e) for e in obs_seq.trace.events]
    thr_events = [key(e) for e in obs_thr.trace.events]
    print(f"  sequential run recorded {len(seq_events)} events")
    print(f"  threaded run recorded   {len(thr_events)} events")
    print(f"  merged timelines identical: {seq_events == thr_events}")

    # Export the threaded trace for Perfetto.
    path = Path(tempfile.gettempdir()) / "dam_reduction_tree_trace.json"
    obs_thr.write_chrome_trace(path)
    print(f"  Perfetto trace written to {path}")
    print("  (open https://ui.perfetto.dev and drop the file in)")

    print("  first events of the merged timeline:")
    for event in obs_thr.trace.events[:5]:
        channel = event.channel or "-"
        print(f"    t={event.time:<3} {event.context:<12} {event.kind:<8} {channel}")


def metrics_demo():
    print()
    print("== run metrics ==")
    config = TreeConfig(trees=1, depth=3, reductions=10, fib_index=3)
    obs = Observability(trace=False)
    result = run_dam_forest(config, executor="threaded", obs=obs)
    metrics = result["metrics"]
    counters = metrics["counters"]
    gauges = metrics["gauges"]
    busiest = max(
        (key for key in gauges if key.startswith("channel_max_occupancy")),
        key=lambda key: gauges[key],
    )
    print(f"  simulated makespan: {result['cycles']} cycles")
    print(f"  total ops: {counters['executor_ops']}")
    print(f"  deepest channel: {busiest} = {gauges[busiest]}")
    parks = sum(
        value for key, value in counters.items() if key.startswith("context_parks")
    )
    print(f"  total parks (SVP waits): {parks}")
    print(
        "  wall-clock per context (histogram): "
        f"{metrics['histograms']['context_wall_seconds_dist']['count']} contexts, "
        f"mean {metrics['histograms']['context_wall_seconds_dist']['mean']:.2e}s"
    )


if __name__ == "__main__":
    stall_report_demo()
    tracing_demo()
    metrics_demo()
