"""Case study walkthrough: exploring streaming attention designs (Sec. VII).

Uses DAM as an algorithm-exploration tool, reproducing the paper's
narrative end to end:

1. The standard streaming attention (Fig. 4a) needs a row buffer of depth
   N + alpha: we find the deadlock boundary empirically.
2. The sequence-length-agnostic design (Fig. 4b) runs at peak throughput
   with constant channel depth — Table II's comparison.
3. Both designs compute the same attention output (checked vs numpy).

Run:  python examples/attention_exploration.py
"""

import numpy as np

from repro.attention import (
    attention_reference,
    build_seq_agnostic_attention,
    build_standard_attention,
)
from repro.core import DeadlockError

SEQ_LEN = 24
HEAD_DIM = 8


def main():
    rng = np.random.default_rng(7)
    q = rng.standard_normal((SEQ_LEN, HEAD_DIM)) * 0.4
    k = rng.standard_normal((SEQ_LEN, HEAD_DIM)) * 0.4
    v = rng.standard_normal((SEQ_LEN, HEAD_DIM))
    reference = attention_reference(q, k, v)

    print(f"== standard streaming attention (N={SEQ_LEN}) ==")
    print("probing the row-buffer deadlock boundary:")
    for depth in [4, 8, 16, SEQ_LEN, SEQ_LEN + 22]:
        pipeline = build_standard_attention(q, k, v, buffer_depth=depth)
        try:
            summary = pipeline.run()
            ok = np.allclose(pipeline.result(), reference)
            print(f"  depth {depth:>3}: completed in {summary.elapsed_cycles} "
                  f"cycles (correct={ok})")
        except DeadlockError:
            print(f"  depth {depth:>3}: DEADLOCK (buffer < row population)")

    print()
    print("== sequence-length-agnostic attention (Fig. 4b) ==")
    for n in [16, 32, 64]:
        qn = rng.standard_normal((n, HEAD_DIM)) * 0.4
        kn = rng.standard_normal((n, HEAD_DIM)) * 0.4
        vn = rng.standard_normal((n, HEAD_DIM))
        bounded = build_seq_agnostic_attention(qn, kn, vn, depth=22)
        s_bounded = bounded.run()
        unbounded = build_seq_agnostic_attention(qn, kn, vn, depth=None)
        s_unbounded = unbounded.run()
        assert np.allclose(bounded.result(), attention_reference(qn, kn, vn))
        print(
            f"  N={n:>3}: depth-22 cycles={s_bounded.elapsed_cycles}, "
            f"unbounded cycles={s_unbounded.elapsed_cycles}  "
            f"(equal={s_bounded.elapsed_cycles == s_unbounded.elapsed_cycles})"
        )
    print()
    print("constant O(1) buffering reaches peak throughput at every N —")
    print("the Table II result.")


if __name__ == "__main__":
    main()
