"""Checkpoint-chaos driver (the CI ``checkpoint-chaos`` job).

Seeded end-to-end kill/resume rounds on top of the unit suites:

1. For each seed: a process run with checkpointing at a randomized
   interval and a worker SIGKILLed after a randomized number of
   checkpoint dumps, retried through the ladder — the final result must
   be bit-identical to a clean reference run, and the last attempt must
   record ``resumed_from``.
2. A crash-only run, then a manual resume from ``latest_checkpoint``
   onto a *different* worker count (elastic repartitioning) — again
   bit-identical.
3. Post-conditions after every round: no stale temp/part files in the
   checkpoint directory, no orphaned child processes (multiprocessing's
   ``resource_tracker`` legitimately lives until interpreter exit), and
   no ``/dev/shm`` segments.

Exit code 0 = all rounds passed.
"""

import argparse
import os
import random
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import RunConfig, checkpoint as ckpt  # noqa: E402
from repro.core.errors import WorkerCrashError  # noqa: E402
from repro.core.faults import FaultPlan  # noqa: E402
from repro.sam import CsfTensor  # noqa: E402
from repro.sam.graphs import build_spmspm  # noqa: E402
from repro.sam.tensor import random_dense  # noqa: E402


def build_kernel():
    b = random_dense(8, 8, density=0.4, seed=23)
    ct = random_dense(8, 8, density=0.4, seed=24)
    return build_spmspm(
        CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(ct, "cc"), depth=4
    )


def fingerprint(kernel, summary):
    chans = tuple(
        sorted(
            (ch.name, ch.stats.enqueues, ch.stats.dequeues)
            for ch in kernel.program.channels
        )
    )
    times = tuple(
        sorted((c.name, float(c.time.now())) for c in kernel.program.contexts)
    )
    return (
        summary.elapsed_cycles,
        kernel.result_dense().tobytes(),
        chans,
        times,
    )


def checkpoint_leftovers(ckdir):
    return [
        name
        for name in os.listdir(ckdir)
        if not (name.startswith("ckpt-") and name.endswith(".dam"))
    ]


def shm_segments():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:
        return set()


def orphan_children():
    """Child processes that outlived their run (resource_tracker excluded)."""
    pids = subprocess.run(
        ["ps", "--ppid", str(os.getpid()), "-o", "pid="],
        capture_output=True,
        text=True,
    ).stdout.split()
    orphans = []
    for pid in pids:
        try:
            with open(f"/proc/{pid}/cmdline") as handle:
                cmd = handle.read().replace("\0", " ").strip()
        except OSError:
            continue  # the ps child itself, already reaped
        if "resource_tracker" in cmd:
            continue  # lives until interpreter exit by design
        orphans.append(f"{pid}: {cmd}")
    return orphans


def check_hygiene(ckdir, shm_before, label, failures):
    leftovers = checkpoint_leftovers(ckdir)
    if leftovers:
        failures.append(f"{label}: stale checkpoint files {leftovers}")
    leaked = shm_segments() - shm_before
    if leaked:
        failures.append(f"{label}: leaked shm segments {sorted(leaked)}")
    orphans = orphan_children()
    if orphans:
        failures.append(f"{label}: orphaned processes {orphans}")


#: The kill fires only if the victim is still live at its Nth dump, so
#: any single try may legitimately finish clean; a scenario gets this
#: many tries to land its crash before we call the injection broken.
MAX_TRIES = 6


def ladder_round(rng, reference, shm_before, failures):
    """Kill a random worker after a random dump count; ladder-resume."""
    victim = rng.choice([0, 1])
    after = rng.randint(2, 3)  # >= 2: round N-1 has stitched by then
    interval = rng.choice([0.0, 0.001, 0.01])
    label = f"ladder(victim={victim}, after={after}, interval={interval})"
    crashed = False
    for attempt in range(MAX_TRIES):
        with tempfile.TemporaryDirectory() as ckdir:
            kernel = build_kernel()
            plan = FaultPlan(seed=rng.randint(0, 1 << 30)).kill_worker(
                worker=victim, after_checkpoints=after
            )
            summary = kernel.run(
                executor="process",
                config=RunConfig(
                    workers=2,
                    timeslice=7,
                    faults=plan,
                    fallback="sequential",
                    checkpoint_interval_s=interval,
                    checkpoint_path=ckdir,
                ),
            )
            if fingerprint(kernel, summary) != reference:
                failures.append(f"{label}: result differs from clean run")
            check_hygiene(ckdir, shm_before, label, failures)
            if summary.attempts[0]["outcome"] != "crashed":
                continue  # run finished before the Nth dump; try again
            crashed = True
            resumed = summary.attempts[-1]["resumed_from"]
            # An every-round cadence guarantees a stitched checkpoint
            # exists by dump N >= 2; a wall-clock cadence may crash
            # before the first stitch (scratch retry, resumed None).
            if interval == 0.0 and (resumed is None or resumed["epoch"] < 1):
                failures.append(f"{label}: retry did not resume ({resumed})")
            print(
                f"  {label}: try {attempt + 1}, attempts="
                f"{[(a['executor'], a['outcome']) for a in summary.attempts]}"
                f" resumed_from={resumed}"
            )
            break
    if not crashed:
        failures.append(f"{label}: kill never fired in {MAX_TRIES} tries")


def elastic_round(rng, reference, shm_before, failures):
    """Crash, then manually resume onto a different worker count."""
    resume_workers = rng.choice([1, 3, 4])
    label = f"elastic(resume_workers={resume_workers})"
    for attempt in range(MAX_TRIES):
        with tempfile.TemporaryDirectory() as ckdir:
            kernel = build_kernel()
            plan = FaultPlan(seed=rng.randint(0, 1 << 30)).kill_worker(
                worker=1, after_checkpoints=2
            )
            try:
                kernel.run(
                    executor="process",
                    config=RunConfig(
                        workers=2,
                        timeslice=7,
                        faults=plan,
                        checkpoint_interval_s=0.0,
                        checkpoint_path=ckdir,
                    ),
                )
                continue  # run finished before the 2nd dump; try again
            except WorkerCrashError:
                pass
            fresh = build_kernel()
            found = ckpt.latest_checkpoint(ckdir, fresh.program)
            if found is None:
                failures.append(f"{label}: no valid checkpoint survived")
                return
            found.restore_into(fresh.program)
            summary = fresh.run(
                executor="process",
                config=RunConfig(workers=resume_workers, timeslice=7),
            )
            if fingerprint(fresh, summary) != reference:
                failures.append(
                    f"{label}: elastic resume differs from clean run"
                )
            print(
                f"  {label}: try {attempt + 1}, resumed epoch "
                f"{found.epoch} OK"
            )
            check_hygiene(ckdir, shm_before, label, failures)
            return
    failures.append(f"{label}: kill never fired in {MAX_TRIES} tries")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--rounds", type=int, default=3)
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    shm_before = shm_segments()
    base = build_kernel()
    reference = fingerprint(
        base,
        base.run(executor="process", config=RunConfig(workers=2, timeslice=7)),
    )

    failures: list[str] = []
    for round_no in range(args.rounds):
        print(f"round {round_no + 1}/{args.rounds}")
        ladder_round(rng, reference, shm_before, failures)
        elastic_round(rng, reference, shm_before, failures)

    if failures:
        print(f"\n{len(failures)} FAILURES")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nALL OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
