"""Table II — sequence-length-agnostic attention: O(1) channel depth.

Paper: simulated cycle counts for the Fig. 4b implementation at sequence
lengths 512..32768, with maximum channel depth 22 versus infinite depth —
identical counts, confirming peak throughput with constant local memory.

Scaled reproduction: same comparison at Python-budget sequence lengths;
the equality must be exact at every length.
"""

import numpy as np
from conftest import report

from repro.attention import attention_reference, build_seq_agnostic_attention
from repro.bench import TextTable

SEQ_LENGTHS = [16, 32, 64, 128]
HEAD_DIM = 8


def inputs(n, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((n, HEAD_DIM)) * 0.3,
        rng.standard_normal((n, HEAD_DIM)) * 0.3,
        rng.standard_normal((n, HEAD_DIM)),
    )


def run_sweep():
    table = TextTable(
        ["seq_len", "cycles_depth22", "cycles_unbounded", "equal"],
        title=(
            "Table II (scaled): seq-agnostic attention simulated cycles, "
            "max depth 22 vs unbounded\npaper: identical at 512..32768 "
            "(524K..2B cycles)"
        ),
    )
    rows = []
    for n in SEQ_LENGTHS:
        q, k, v = inputs(n)
        bounded = build_seq_agnostic_attention(q, k, v, depth=22)
        s_bounded = bounded.run()
        unbounded = build_seq_agnostic_attention(q, k, v, depth=None)
        s_unbounded = unbounded.run()
        assert np.allclose(bounded.result(), attention_reference(q, k, v))
        equal = s_bounded.elapsed_cycles == s_unbounded.elapsed_cycles
        rows.append((n, s_bounded.elapsed_cycles, s_unbounded.elapsed_cycles, equal))
        table.add_row(n, s_bounded.elapsed_cycles, s_unbounded.elapsed_cycles, equal)
    report("table2_seq_agnostic", table.render())
    return rows


def test_table2_constant_depth_is_peak_throughput(benchmark):
    rows = run_sweep()
    assert all(equal for _, _, _, equal in rows)
    q, k, v = inputs(64)
    benchmark.pedantic(
        lambda: build_seq_agnostic_attention(q, k, v, depth=22).run(),
        rounds=3,
        iterations=1,
    )
