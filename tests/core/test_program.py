"""Tests for context registration and program graph validation."""

import pytest

from repro import (
    Context,
    FunctionContext,
    GraphConstructionError,
    IncrCycles,
    ProgramBuilder,
    make_channel,
)
from repro.contexts import Collector, RampSource


class Passthrough(Context):
    def __init__(self, inp, out):
        super().__init__()
        self.inp, self.out = inp, out
        self.register(inp, out)

    def run(self):
        while True:
            value = yield self.inp.dequeue()
            yield self.out.enqueue(value)


class TestRegistration:
    def test_register_rejects_non_handles(self):
        class Bad(Context):
            def __init__(self):
                super().__init__()
                self.register("not a handle")

            def run(self):
                yield IncrCycles(1)

        with pytest.raises(GraphConstructionError):
            Bad()

    def test_double_attach_sender_rejected(self):
        snd, rcv = make_channel()

        with pytest.raises(GraphConstructionError):
            RampSource(snd, 1)
            RampSource(snd, 1)

    def test_double_attach_receiver_rejected(self):
        snd, rcv = make_channel()
        Collector(rcv)
        with pytest.raises(GraphConstructionError):
            Collector(rcv)

    def test_contexts_get_unique_default_names(self):
        snd1, _ = make_channel()
        snd2, _ = make_channel()
        a = RampSource(snd1, 1)
        b = RampSource(snd2, 1)
        assert a.name != b.name


class TestBuildValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(GraphConstructionError, match="no contexts"):
            ProgramBuilder().build()

    def test_dangling_receiver_rejected(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        builder.add(RampSource(snd, 3))
        with pytest.raises(GraphConstructionError, match="no receiving context"):
            builder.build()

    def test_dangling_sender_rejected(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        builder.add(Collector(rcv))
        with pytest.raises(GraphConstructionError, match="no sending context"):
            builder.build()

    def test_context_not_added_is_reported(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        RampSource(snd, 3)  # never added to the builder
        builder.add(Collector(rcv))
        with pytest.raises(GraphConstructionError, match="never added"):
            builder.build()

    def test_duplicate_add_rejected(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        src = RampSource(snd, 3)
        builder.add(src)
        builder.add(src)
        builder.add(Collector(rcv))
        with pytest.raises(GraphConstructionError, match="more than once"):
            builder.build()

    def test_external_channels_are_adopted(self):
        snd, rcv = make_channel(capacity=2)
        builder = ProgramBuilder()
        builder.add(RampSource(snd, 3))
        builder.add(Collector(rcv))
        program = builder.build()
        assert program.channel_count() == 1
        assert program.context_count() == 2

    def test_valid_program_counts(self):
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2)
        s2, r2 = builder.unbounded()
        builder.add(RampSource(s1, 3))
        builder.add(Passthrough(r1, s2))
        builder.add(Collector(r2))
        program = builder.build()
        assert program.context_count() == 3
        assert program.channel_count() == 2

    def test_unknown_executor_rejected(self):
        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2)
        builder.add(RampSource(s1, 3))
        builder.add(Collector(r1))
        with pytest.raises(ValueError, match="unknown executor"):
            builder.build().run(executor="quantum")


class TestFunctionContext:
    def test_function_context_runs(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)

        def producer():
            for i in range(3):
                yield snd.enqueue(i * i)
                yield IncrCycles(1)

        builder.add(FunctionContext(producer, handles=[snd]))
        sink = builder.add(Collector(rcv))
        builder.build().run()
        assert sink.values == [0, 1, 4]

    def test_pass_context_exposes_clock(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        times = []

        def producer(ctx):
            yield IncrCycles(5)
            times.append(ctx.time.now())
            yield snd.enqueue("x")

        builder.add(
            FunctionContext(producer, handles=[snd], pass_context=True)
        )
        builder.add(Collector(rcv))
        builder.build().run()
        assert times == [5]

    def test_name_defaults_to_function_name(self):
        snd, rcv = make_channel()

        def my_producer():
            yield snd.enqueue(1)

        ctx = FunctionContext(my_producer, handles=[snd])
        assert "my_producer" in ctx.name
