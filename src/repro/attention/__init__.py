"""Case study: streaming attention on abstract dataflow hardware (Sec. VII).

Two streaming implementations of the attention algorithm
``O = softmax(Q K^T / sqrt(d)) V``:

* **Standard** (Fig. 4a): scores stream row-major through exp; the exp
  stream is buffered in channel *C* while the row sum accumulates, so *C*
  needs depth ``N + alpha`` — O(N) local memory — for peak throughput
  (undersized buffers deadlock the reduction).
* **Sequence-length-agnostic** (Fig. 4b): an additional running-sum
  context accumulates the numerator and denominator together, so every
  channel needs only O(1) depth regardless of sequence length (Table II).

A cycle-by-cycle implementation of the standard pipeline
(:mod:`repro.attention.cyclever`) plays the role of Spatial's simulator in
the Fig. 5/6 real-time comparisons.
"""

from .blocks import AttentionParams
from .cyclever import run_cycle_standard_attention
from .reference import attention_reference
from .seq_agnostic import build_seq_agnostic_attention
from .standard import build_standard_attention

__all__ = [
    "AttentionParams",
    "attention_reference",
    "build_standard_attention",
    "build_seq_agnostic_attention",
    "run_cycle_standard_attention",
]
