"""Superblock compilation (DESIGN.md §15): selection, bail-outs, identity.

The correctness bar is exactness: for any program, running with
``superblocks="on"`` must produce bit-identical simulated results —
elapsed cycles, per-context finish times, channel traffic statistics,
and delivered values — to ``superblocks="off"``.  These tests drive the
driver through every bail-out point (park on a full/empty channel,
mid-batch and last-constituent fused parks, WaitUntil fast-path retreat,
rare ops, budget exhaustion, ChannelClosed wind-down, deadlock) and
check the identity each time.
"""

import pytest

from repro import (
    AdvanceTo,
    Context,
    DeadlockError,
    FairPolicy,
    FaultInjected,
    FaultPlan,
    IncrCycles,
    ProgramBuilder,
    RunConfig,
    SequentialExecutor,
    SimulationError,
    ViewTime,
    WaitUntil,
)
from repro.contexts import (
    BinaryFunction,
    Broadcast,
    Collector,
    IterableSource,
    NullSink,
    RampSource,
    UnaryFunction,
)
from repro.core import plan_clusters
from repro.core.executor.superblock import (
    cold_cluster_count,
    compile_superblocks,
    normalize_mode,
    select_clusters,
)

MODES = ["off", "on", "auto"]


def _signature(program, summary):
    """Everything that must be superblock-independent about a run.

    Contexts and channels are keyed by program position, not by name:
    auto-generated names carry a global counter that differs between
    otherwise identical builds.  ``max_real_occupancy`` is deliberately
    absent: it measures real queue depth, which legitimately varies with
    scheduling order."""
    return {
        "elapsed": summary.elapsed_cycles,
        "context_times": tuple(
            summary.context_times[ctx.name] for ctx in program.contexts
        ),
        "ops": summary.ops_executed,
        "channels": tuple(
            (
                index,
                ch.stats.enqueues,
                ch.stats.dequeues,
                ch.stats.peeks,
            )
            for index, ch in enumerate(program.channels)
        ),
    }


def _identical_across_modes(build, probe=None, **config_kwargs):
    """Run ``build()`` under every superblock mode and assert the
    signatures (and ``probe``'s observables) agree with mode="off"."""
    reference = None
    for mode in MODES:
        program, observe = build()
        summary = program.run(
            config=RunConfig(superblocks=mode, **config_kwargs)
        )
        outcome = (_signature(program, summary), observe())
        if reference is None:
            reference = outcome
        else:
            assert outcome == reference, f"superblocks={mode} diverged"
    return reference


# ----------------------------------------------------------------------
# Mode normalization and cluster selection.
# ----------------------------------------------------------------------


class TestNormalizeMode:
    @pytest.mark.parametrize("alias", [None, False, "off"])
    def test_off_aliases(self, alias):
        assert normalize_mode(alias) == "off"

    @pytest.mark.parametrize("alias", [True, "on"])
    def test_on_aliases(self, alias):
        assert normalize_mode(alias) == "on"

    def test_auto(self):
        assert normalize_mode("auto") == "auto"

    @pytest.mark.parametrize("bad", ["always", 1, 0.5])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ValueError, match="superblocks"):
            normalize_mode(bad)

    def test_bad_mode_surfaces_through_run(self):
        program, _ = _pipeline()
        with pytest.raises(ValueError, match="superblocks"):
            program.run(config=RunConfig(superblocks="bogus"))


def _two_pipelines():
    """Two disconnected source→sink pipelines: two cold clusters."""
    builder = ProgramBuilder()
    for _ in range(2):
        snd, rcv = builder.bounded(2)
        builder.add(RampSource(snd, 5))
        builder.add(NullSink(rcv))
    return builder.build()


class TestSelection:
    def test_single_member_clusters_never_selected(self):
        class Loner(Context):
            def run(self):
                yield IncrCycles(3)

        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        builder.add(RampSource(snd, 3))
        builder.add(NullSink(rcv))
        builder.add(Loner())  # channel-less: a 1-member cluster
        program = builder.build()
        clusters = plan_clusters(
            program, {id(ctx): 0 for ctx in program.contexts}
        )
        assert len(clusters) == 2
        selected = select_clusters(program, clusters, "on")
        assert [spec.size for spec in selected] == [2]
        assert cold_cluster_count(program) == 1

    def test_fresh_program_auto_selects_everything(self):
        program = _two_pipelines()
        clusters = plan_clusters(
            program, {id(ctx): 0 for ctx in program.contexts}
        )
        assert len(select_clusters(program, clusters, "auto")) == 2

    def test_auto_skips_zero_traffic_clusters_once_observed(self):
        program = _two_pipelines()
        clusters = plan_clusters(
            program, {id(ctx): 0 for ctx in program.contexts}
        )
        # Traffic observed on the first pipeline's channel only.
        program.channels[0].stats.enqueues = 5
        program.channels[0].stats.dequeues = 5
        selected = select_clusters(program, clusters, "auto")
        assert len(selected) == 1
        assert "on" != "auto" or True
        # "on" still compiles both regardless of observations.
        assert len(select_clusters(program, clusters, "on")) == 2

    def test_cold_cluster_count(self):
        assert cold_cluster_count(_two_pipelines()) == 2

    def test_compile_counts_and_off_is_inert(self):
        program = _two_pipelines()
        executor = SequentialExecutor(superblocks="off")
        summary = executor.execute(program)
        assert summary.elapsed_cycles >= 0

        program = _two_pipelines()
        states = {}
        ex = SequentialExecutor()
        # compile_superblocks is exercised end-to-end elsewhere; here,
        # only the mode gate matters.
        assert compile_superblocks(ex, program, states, "off") == 0


# ----------------------------------------------------------------------
# Bit-identity across every bail-out point (sequential executor).
# ----------------------------------------------------------------------


def _pipeline(n=25, capacity=2, ii=1):
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(capacity)
    s2, r2 = builder.bounded(capacity)
    builder.add(RampSource(s1, n, ii=ii))
    builder.add(UnaryFunction(r1, s2, lambda x: 2 * x, ii=ii))
    collector = builder.add(Collector(r2))
    return builder.build(), lambda: list(collector.values)


def _capacity_one_ping_pong(n=30):
    """Every hop parks: capacity-1 channels with response latency."""
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(1, latency=1, resp_latency=1)
    s2, r2 = builder.bounded(1, latency=1, resp_latency=1)
    builder.add(RampSource(s1, n, ii=1))
    builder.add(UnaryFunction(r1, s2, lambda x: x + 1, ii=1))
    collector = builder.add(Collector(r2, ii=2))
    return builder.build(), lambda: list(collector.values)


def _diamond(n=12):
    builder = ProgramBuilder()
    s_in, r_in = builder.bounded(2)
    s_a, r_a = builder.bounded(2)
    s_b, r_b = builder.bounded(2)
    s_out, r_out = builder.bounded(2)
    builder.add(RampSource(s_in, n))
    builder.add(Broadcast(r_in, [s_a, s_b]))
    builder.add(BinaryFunction(r_a, r_b, s_out, lambda a, b: a + b))
    collector = builder.add(Collector(r_out))
    return builder.build(), lambda: list(collector.values)


class TestBitIdentity:
    def test_pipeline(self):
        sig, values = _identical_across_modes(_pipeline)
        assert values == [2 * i for i in range(25)]

    def test_capacity_one_ping_pong(self):
        """Backpressure parks (enqueue on full) and empty parks (dequeue)
        on every hop; peer-to-peer release/delivery must stay exact."""
        sig, values = _identical_across_modes(_capacity_one_ping_pong)
        assert values == [i + 1 for i in range(30)]

    def test_diamond(self):
        sig, values = _identical_across_modes(_diamond)
        assert values == [2 * i for i in range(12)]

    def test_unbounded_channels(self):
        def build():
            builder = ProgramBuilder()
            snd, rcv = builder.unbounded()
            builder.add(RampSource(snd, 40, ii=1))
            collector = builder.add(Collector(rcv, ii=3))
            return builder.build(), lambda: list(collector.values)

        _identical_across_modes(build)

    def test_budget_exhaustion_bailout(self):
        """A tiny timeslice forces the driver to bail at budget
        exhaustion mid-stream, repeatedly; results must not move."""
        reference = None
        for mode in MODES:
            program, observe = _capacity_one_ping_pong()
            summary = SequentialExecutor(
                policy=FairPolicy(timeslice=2), superblocks=mode
            ).execute(program)
            outcome = (_signature(program, summary), observe())
            if reference is None:
                reference = outcome
            assert outcome == reference, f"superblocks={mode} diverged"

    def test_early_receiver_closes_channel(self):
        """ChannelClosed wind-down: a receiver that stops early voids the
        channel; producers finish identically in every mode."""

        class TakeTwo(Context):
            def __init__(self, inp):
                super().__init__()
                self.inp = inp
                self.register(inp)

            def run(self):
                yield self.inp.dequeue()
                yield self.inp.dequeue()

        def build():
            builder = ProgramBuilder()
            snd, rcv = builder.bounded(1)
            source = builder.add(RampSource(snd, 50, ii=1))
            builder.add(TakeTwo(rcv))
            return builder.build(), lambda: source.finish_time

        _identical_across_modes(build)

    def test_deadlock_detected_in_every_mode(self):
        class Hold(Context):
            def __init__(self, inp, out):
                super().__init__()
                self.inp, self.out = inp, out
                self.register(inp, out)

            def run(self):
                value = yield self.inp.dequeue()
                yield self.out.enqueue(value)

        for mode in MODES:
            builder = ProgramBuilder()
            s1, r1 = builder.bounded(1)
            s2, r2 = builder.bounded(1)
            builder.add(Hold(r1, s2))
            builder.add(Hold(r2, s1))
            with pytest.raises(DeadlockError, match="dequeue on empty"):
                builder.build().run(config=RunConfig(superblocks=mode))


class TestFusedBatches:
    """Fused op batches park mid-batch (non-last constituent) and on the
    last constituent; both resume paths must stay exact."""

    @staticmethod
    def _fused_stage(inp, out, ii):
        class FusedStage(Context):
            def __init__(self):
                super().__init__()
                self.inp, self.out = inp, out
                self.register(inp, out)

            def run(self):
                while True:
                    # tuple batch: dequeue, think, enqueue — the enqueue
                    # (non-last park) and dequeue (last-constituent park
                    # after a preceding enqueue below) both get exercised
                    # against capacity-1 channels.
                    value = yield (
                        self.inp.dequeue(),
                        IncrCycles(ii),
                    )
                    yield (
                        self.out.enqueue(value[0] * 3),
                        IncrCycles(1),
                    )

        return FusedStage()

    def test_fused_parks_both_positions(self):
        def build():
            builder = ProgramBuilder()
            s1, r1 = builder.bounded(1, latency=1, resp_latency=1)
            s2, r2 = builder.bounded(1, latency=1, resp_latency=1)
            builder.add(IterableSource(s1, list(range(20)), ii=1))
            builder.add(self._fused_stage(r1, s2, ii=2))
            collector = builder.add(Collector(r2, ii=3))
            return builder.build(), lambda: list(collector.values)

        sig, values = _identical_across_modes(build)
        assert values == [3 * i for i in range(20)]

    def test_fused_batch_ending_in_dequeue(self):
        """Last-constituent park: the batch's final op is the dequeue, so
        a local wake delivers straight into the plan buffer."""

        class DeqLast(Context):
            def __init__(self, inp, out):
                super().__init__()
                self.inp, self.out = inp, out
                self.register(inp, out)

            def run(self):
                total = 0
                try:
                    while True:
                        results = yield (
                            IncrCycles(1),
                            self.inp.dequeue(),
                        )
                        total += results[1]
                        yield self.out.enqueue(total)
                except Exception:
                    raise

        def build():
            builder = ProgramBuilder()
            s1, r1 = builder.bounded(1)
            s2, r2 = builder.bounded(4)
            builder.add(RampSource(s1, 15, ii=2))
            builder.add(DeqLast(r1, s2))
            collector = builder.add(Collector(r2))
            return builder.build(), lambda: list(collector.values)

        sig, values = _identical_across_modes(build)
        expected, total = [], 0
        for i in range(15):
            total += i
            expected.append(total)
        assert values == expected


class TestRareOpBailouts:
    def test_view_time(self):
        observed = []

        class Observer(Context):
            def __init__(self, peer, inp):
                super().__init__()
                self.peer = peer
                self.inp = inp
                self.register(inp)

            def run(self):
                yield self.inp.dequeue()
                observed.append((yield ViewTime(self.peer)))

        def build():
            observed.clear()
            builder = ProgramBuilder()
            snd, rcv = builder.bounded(1)
            source = builder.add(
                IterableSource(snd, ["x"], initial_delay=42)
            )
            builder.add(Observer(source, rcv))
            return builder.build(), lambda: list(observed)

        sig, values = _identical_across_modes(build)
        assert values[0] >= 42

    def test_advance_to(self):
        class Jumper(Context):
            def __init__(self, out):
                super().__init__()
                self.out = out
                self.register(out)

            def run(self):
                yield AdvanceTo(500)
                yield self.out.enqueue("late")

        def build():
            builder = ProgramBuilder()
            snd, rcv = builder.bounded(1)
            jumper = builder.add(Jumper(snd))
            builder.add(NullSink(rcv))
            return builder.build(), lambda: jumper.finish_time

        sig, finish = _identical_across_modes(build)
        assert finish >= 500

    def test_peek(self):
        peeked = []

        class Peeker(Context):
            def __init__(self, inp):
                super().__init__()
                self.inp = inp
                self.register(inp)

            def run(self):
                peeked.append((yield self.inp.peek()))
                peeked.append((yield self.inp.dequeue()))

        def build():
            peeked.clear()
            builder = ProgramBuilder()
            snd, rcv = builder.bounded(1)
            builder.add(IterableSource(snd, [7]))
            builder.add(Peeker(rcv))
            return builder.build(), lambda: list(peeked)

        sig, values = _identical_across_modes(build)
        assert values == [7, 7]

    def test_wait_until_drops_fast_path(self):
        """A registered WaitUntil waiter retreats the executor's fast
        path; the superblock must bail and the generic scheduler must
        finish the run — identically in every mode."""
        results = []

        class Waiter(Context):
            def __init__(self, peer):
                super().__init__()
                self.peer = peer

            def run(self):
                now = yield WaitUntil(self.peer, 100)
                results.append(now)

        class Mover(Context):
            def __init__(self, out):
                super().__init__()
                self.out = out
                self.register(out)

            def run(self):
                for _ in range(20):
                    yield IncrCycles(10)
                    yield self.out.enqueue(0)

        def build():
            results.clear()
            builder = ProgramBuilder()
            snd, rcv = builder.bounded(2)
            mover = builder.add(Mover(snd))
            builder.add(NullSink(rcv))
            builder.add(Waiter(mover))
            # WaitUntil's return value is an SVA read — a monotone lower
            # bound on the peer's clock, legitimately schedule-dependent
            # (the generic scheduler may resume the waiter earlier than
            # the superblock run does).  Only the bound is checked.
            return builder.build(), lambda: None

        _identical_across_modes(build)
        assert results[0] >= 100


class TestGates:
    def test_fault_plans_disable_superblocks_but_stay_exact(self):
        """Context faults are slice-granular in the generic scheduler;
        a fault plan gates compilation off, and the fault still fires."""
        for mode in MODES:
            program, _ = _pipeline(n=40)
            plan = FaultPlan().raise_in(
                program.contexts[0].name, after_ops=10, message="chaos"
            )
            with pytest.raises(SimulationError) as info:
                program.run(config=RunConfig(superblocks=mode, faults=plan))
            assert isinstance(info.value.original, FaultInjected)

    def test_tracing_runs_identically(self):
        """Tracing retreats to the generic dispatch path (fast path off,
        superblocks inert): event streams must match modes anyway."""
        from repro.obs import Observability

        streams = []
        for mode in MODES:
            program, observe = _capacity_one_ping_pong(n=10)
            obs = Observability()
            program.run(config=RunConfig(superblocks=mode, obs=obs))
            # Auto-generated context/channel names differ per build;
            # normalize them to program positions before comparing.
            ctx_index = {
                ctx.name: i for i, ctx in enumerate(program.contexts)
            }
            chan_index = {
                ch.name: i for i, ch in enumerate(program.channels)
            }
            streams.append(
                [
                    (
                        ctx_index[e.context],
                        e.kind,
                        chan_index.get(e.channel),
                        e.time,
                        e.seq,
                    )
                    for e in obs.trace.events
                ]
            )
        assert streams[0] == streams[1] == streams[2]

    def test_max_ops_abort_is_identical(self):
        """max_ops disables the fast path (superblocks inert) — the
        abort count must not depend on the requested mode."""
        from repro.core.errors import DamError

        counts = []
        for mode in MODES:
            program, _ = _pipeline(n=200)
            try:
                program.run(
                    config=RunConfig(superblocks=mode, max_ops=50)
                )
                counts.append(None)
            except DamError as exc:
                counts.append(type(exc).__name__)
        assert counts[0] == counts[1] == counts[2]

    def test_threaded_twin_matches_sequential(self):
        """Shared-clock twin: the threaded executor drives each cluster
        in one thread with per-turn published clocks."""
        reference = None
        for executor in ["sequential", "threaded"]:
            for mode in MODES:
                program, observe = _capacity_one_ping_pong(n=12)
                summary = program.run(
                    executor=executor,
                    config=RunConfig(superblocks=mode),
                )
                outcome = (_signature(program, summary), observe())
                if reference is None:
                    reference = outcome
                assert outcome == reference, (
                    f"{executor}/superblocks={mode} diverged"
                )
