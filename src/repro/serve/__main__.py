"""``python -m repro.serve`` — run a simulation server from the shell.

Tenant policies come from a JSON file mapping tenant name to policy
fields, e.g.::

    {"ci": {"max_in_flight": 4, "deadline_s": 30.0},
     "interactive": {"max_in_flight": 1, "run_budget_s": 600.0}}
"""

from __future__ import annotations

import argparse
import json

from .server import ServeConfig, serve
from .tenants import TenantPolicy


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve DAM simulations over HTTP (ndjson streaming).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8750, help="0 picks a free port"
    )
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=2,
        help="concurrent run slots (each may fork simulation workers)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="requests allowed to wait before the server sheds with 429",
    )
    parser.add_argument(
        "--plan-cache-entries", type=int, default=128, help="LRU size"
    )
    parser.add_argument(
        "--plan-cache-path",
        type=str,
        default=None,
        metavar="FILE",
        help="persist learned plans here: loaded at startup (if present), "
        "saved at shutdown — warm placements survive restarts",
    )
    parser.add_argument(
        "--tenants",
        type=str,
        default=None,
        metavar="FILE",
        help="JSON file of per-tenant policies (see module docstring)",
    )
    parser.add_argument(
        "--executor",
        type=str,
        default=None,
        help="force every request onto this executor (default: the spec's)",
    )
    args = parser.parse_args(argv)

    tenants = {}
    if args.tenants:
        with open(args.tenants, encoding="utf-8") as handle:
            raw = json.load(handle)
        tenants = {
            name: TenantPolicy.from_dict(name, fields)
            for name, fields in raw.items()
        }

    serve(
        ServeConfig(
            host=args.host,
            port=args.port,
            max_concurrent=args.max_concurrent,
            queue_limit=args.queue_limit,
            plan_cache_entries=args.plan_cache_entries,
            plan_cache_path=args.plan_cache_path,
            tenants=tenants,
            executor_override=args.executor,
        )
    )


if __name__ == "__main__":
    main()
