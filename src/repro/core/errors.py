"""Exception types raised by the DAM core.

The framework distinguishes three failure families:

* **Protocol errors** (:class:`ChannelClosed`) — part of normal simulation
  control flow.  A receiver that dequeues from a channel whose sender has
  finished (and whose data has been drained) receives :class:`ChannelClosed`.
  Contexts may catch it to wind down gracefully; if it escapes a context's
  generator the executor treats the context as *cleanly finished*.

* **Simulation errors** (:class:`DeadlockError`, :class:`SimulationError`) —
  the simulated system misbehaved: a dependency cycle of blocked contexts, or
  a user context raised an unexpected exception.

* **Construction errors** (:class:`GraphConstructionError`) — the program was
  mis-wired: a dangling channel endpoint, a handle registered twice, and so
  on.  These are raised at :meth:`ProgramBuilder.build` time, before any
  simulation starts.

* **Host errors** (:class:`WorkerCrashError`, :class:`RunTimeoutError`) — the
  *host* failed, not the simulated system: a worker process died (OOM kill,
  segfault, SIGKILL) or the run overshot its wall-clock deadline.  Unlike the
  simulation errors these are non-deterministic, so the retry ladder in
  :meth:`Program.run` may transparently re-run the program on a safer
  executor when ``RunConfig(fallback=...)`` is set.

The module also hosts :func:`pack_exception` / :func:`unpack_exception`, the
marshalling helpers that carry exceptions across the worker result pipe.
Several DAM exceptions have custom ``__init__`` signatures that break naive
exception pickling (``DeadlockError`` would unpickle with its formatted
message where the ``blocked`` list belongs; ``SimulationError`` fails
outright), so the helpers encode them field-by-field and demote anything
unpicklable to its ``repr``.
"""

from __future__ import annotations

import pickle
from typing import Any


class DamError(Exception):
    """Base class for all errors raised by the repro package."""


class ChannelClosed(DamError):
    """Raised on dequeue/peek of a drained channel whose sender finished.

    This mirrors DAM-RS's ``DequeueError``: it is the normal way for
    termination to propagate through a dataflow graph that does not use
    explicit done tokens.
    """

    def __init__(self, channel_name: str = "<channel>"):
        super().__init__(f"channel {channel_name} is closed and drained")
        self.channel_name = channel_name


class DeadlockError(DamError):
    """Raised when no context can make progress but some are unfinished.

    The message lists each blocked context and the operation it is blocked
    on, which is the primary debugging aid for undersized channels (see the
    stochastic-deadlock discussion in Section VIII of the paper).
    """

    def __init__(self, blocked: list[str]):
        detail = "; ".join(blocked) if blocked else "<no detail>"
        super().__init__(f"simulation deadlocked: {detail}")
        self.blocked = blocked


class SimulationError(DamError):
    """A user context raised an unexpected exception during simulation."""

    def __init__(self, context_name: str, original: BaseException):
        super().__init__(f"context {context_name!r} failed: {original!r}")
        self.context_name = context_name
        self.original = original


class GraphConstructionError(DamError):
    """The program graph is structurally invalid (dangling channel, etc.)."""


class WorkerCrashError(DamError):
    """A worker process died without reporting a result.

    Raised by the process executor's supervisor when a worker's result pipe
    hits EOF (or its sentinel fires) before a final payload arrived —
    typically an external SIGKILL, the OOM killer, or a segfault in an
    extension module.  Carries everything the supervisor could salvage:
    which worker died, its exit code, the contexts it had claimed, and the
    last clock value each of those contexts published to the shared clock
    board before the crash.
    """

    def __init__(
        self,
        worker: int,
        exitcode: int | None = None,
        contexts: list[str] | None = None,
        clocks: dict[str, float] | None = None,
    ):
        self.worker = worker
        self.exitcode = exitcode
        self.contexts = list(contexts or [])
        self.clocks = dict(clocks or {})
        cause = f"exit code {exitcode}" if exitcode is not None else "no exit code"
        if exitcode is not None and exitcode < 0:
            cause += f" (signal {-exitcode})"
        running = (
            " while running " + ", ".join(repr(name) for name in self.contexts)
            if self.contexts
            else ""
        )
        super().__init__(f"worker {worker} crashed ({cause}){running}")


class RunTimeoutError(DamError):
    """The run exceeded ``RunConfig(deadline_s=...)`` and was aborted.

    ``summary`` holds a *partial* :class:`RunSummary` — finish times for
    contexts that completed before the abort and current (lower-bound)
    clocks for the rest — and ``stall_report`` describes where every
    still-blocked context was parked when the deadline fired.
    """

    def __init__(
        self,
        deadline_s: float,
        executor: str = "",
        summary: Any = None,
        stall_report: Any = None,
    ):
        self.deadline_s = deadline_s
        self.executor = executor
        self.summary = summary
        self.stall_report = stall_report
        where = f" on executor {executor!r}" if executor else ""
        super().__init__(f"run exceeded deadline of {deadline_s}s{where}")


class NotCheckpointable(DamError):
    """Checkpointing was requested for a program that cannot be snapshotted.

    A context is checkpointable only when it keeps every piece of
    inter-yield state in instance attributes declared via
    ``Context.checkpoint_attrs`` (the resumable-state contract,
    DESIGN.md §17).  Plain opaque-generator contexts — a bare
    :class:`~repro.core.context.FunctionContext`, or a subclass that never
    opted in — refuse with this typed error *before* the run starts, so a
    long run never discovers at its first cut point that its state cannot
    be captured.
    """

    def __init__(self, context_names: list[str]):
        self.context_names = list(context_names)
        names = ", ".join(repr(name) for name in self.context_names)
        super().__init__(
            f"checkpointing requested but these contexts keep opaque "
            f"generator state (no checkpoint_attrs/snapshot): {names}"
        )


class CheckpointError(DamError):
    """A checkpoint file could not be read, or does not fit the program.

    Raised on a bad magic header / version, a truncated or corrupt
    payload, or a program fingerprint mismatch (the checkpoint was taken
    from a structurally different graph).  The latest-valid discovery in
    :func:`~repro.core.checkpoint.latest_checkpoint` *skips* damaged
    files instead of raising — this error surfaces only when a caller
    loads a specific path."""


# ----------------------------------------------------------------------
# Cross-process exception marshalling.
# ----------------------------------------------------------------------


def pack_exception(exc: BaseException) -> dict[str, Any]:
    """Encode ``exc`` as a picklable dict for the worker result pipe.

    DAM exceptions with custom constructor signatures are encoded
    field-by-field so :func:`unpack_exception` can rebuild them exactly.
    Arbitrary exceptions are shipped as-is when picklable and demoted to
    their ``repr`` otherwise (a user context can raise an exception holding
    an open file handle, a generator, a lock — anything).
    """
    if isinstance(exc, ChannelClosed):
        return {"kind": "channel_closed", "channel": exc.channel_name}
    if isinstance(exc, DeadlockError):
        return {"kind": "deadlock", "blocked": list(exc.blocked)}
    if isinstance(exc, SimulationError):
        original: BaseException | None = exc.original
        try:
            pickle.dumps(original)
        except Exception:
            original = None
        return {
            "kind": "simulation",
            "context": exc.context_name,
            "original": original,
            "repr": repr(exc.original),
        }
    try:
        pickle.dumps(exc)
    except Exception:
        return {"kind": "opaque", "type": type(exc).__name__, "repr": repr(exc)}
    return {"kind": "pickled", "exception": exc, "repr": repr(exc)}


def unpack_exception(info: dict[str, Any]) -> BaseException:
    """Rebuild the exception encoded by :func:`pack_exception`.

    The inverse is lossy only in the demotion cases: an unpicklable
    ``SimulationError.original`` comes back as a ``RuntimeError`` carrying
    the original's ``repr``, and an unpicklable top-level exception comes
    back as ``RuntimeError("<TypeName>: <repr>")``.
    """
    kind = info.get("kind")
    if kind == "channel_closed":
        return ChannelClosed(info.get("channel", "<channel>"))
    if kind == "deadlock":
        return DeadlockError(list(info.get("blocked", [])))
    if kind == "simulation":
        original = info.get("original")
        if original is None:
            original = RuntimeError(info.get("repr") or "worker context failed")
        return SimulationError(info.get("context") or "<worker>", original)
    if kind == "pickled":
        return info["exception"]
    detail = info.get("repr") or "worker failed"
    type_name = info.get("type")
    return RuntimeError(f"{type_name}: {detail}" if type_name else detail)
