"""Binary reduction-tree forests on both engines (the Fig. 3 workload).

The paper's DAM-vs-SST microbenchmark: a forest of {2, 8, 32} binary
reduction trees of depth {8, 10}, each running 100000 reductions, with per
node work of fib({16, 20}), and optional imbalance (+4 on the first tree's
Fibonacci index, a ~16x work increase).  We reproduce the same generator
with scaled-down defaults suited to Python real-time budgets; every bench
prints both the paper's configuration and the one actually run.

Both backends build the *same* logical forest:

* DAM: leaves are :class:`~repro.contexts.source.RampSource`, internal
  nodes :class:`~repro.contexts.reduce.ReduceNode`, roots drain into
  :class:`~repro.contexts.sink.Collector`.
* eventsim: leaf/node/root components over latency-1 links, with the
  event-driven alignment buffering the paper's Listing 2 illustrates.

Correctness link: both must report the same root sums (reduction of
0..R-1 ramps through the tree), checked by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..contexts import Collector, RampSource, ReduceNode
from ..core import ProgramBuilder, Program
from ..eventsim import Component, Engine, Link, ParallelEngine, PortBuffer
from .fib import fib


@dataclass(frozen=True)
class TreeConfig:
    """One Fig. 3 configuration point."""

    trees: int
    depth: int
    reductions: int
    fib_index: int
    imbalance: int = 0  # added to fib_index for the FIRST tree only

    @property
    def leaves_per_tree(self) -> int:
        return 2**self.depth

    @property
    def nodes_per_tree(self) -> int:
        return 2**self.depth - 1

    def fib_for_tree(self, tree: int) -> int:
        return self.fib_index + (self.imbalance if tree == 0 else 0)

    def label(self) -> str:
        return (
            f"trees={self.trees} depth={self.depth} fib={self.fib_index} "
            f"imb={self.imbalance} R={self.reductions}"
        )

    def expected_root_sums(self) -> list[int]:
        """Per-reduction root values: sum of all leaf values in wave r."""
        # Every leaf emits the ramp 0..R-1, so wave r reduces to r * leaves.
        return [r * self.leaves_per_tree for r in range(self.reductions)]


# ----------------------------------------------------------------------
# DAM backend.
# ----------------------------------------------------------------------


def build_dam_forest(
    config: TreeConfig, capacity: int = 8
) -> tuple[Program, list[Collector]]:
    """Build the forest as a DAM program; returns (program, root collectors)."""
    builder = ProgramBuilder()
    roots: list[Collector] = []
    for tree in range(config.trees):
        fib_index = config.fib_for_tree(tree)
        work = (lambda k: (lambda: fib(k)))(fib_index)
        # Build level by level, bottom-up: level 0 are the leaf sources.
        receivers = []
        for leaf in range(config.leaves_per_tree):
            # Explicit channel names keep traces and exports comparable
            # across separately built programs (the global channel-id
            # fallback names would differ between builds).
            snd, rcv = builder.bounded(
                capacity, latency=1, name=f"t{tree}_leaf{leaf}_out"
            )
            builder.add(
                RampSource(
                    snd,
                    config.reductions,
                    ii=1,
                    name=f"t{tree}_leaf{leaf}",
                )
            )
            receivers.append(rcv)
        level = 0
        while len(receivers) > 1:
            next_receivers = []
            for pair in range(0, len(receivers), 2):
                snd, rcv = builder.bounded(
                    capacity, latency=1,
                    name=f"t{tree}_n{level}_{pair // 2}_out",
                )
                builder.add(
                    ReduceNode(
                        receivers[pair],
                        receivers[pair + 1],
                        snd,
                        combine=lambda a, b: a + b,
                        work_fn=work,
                        ii=1,
                        name=f"t{tree}_n{level}_{pair // 2}",
                    )
                )
                next_receivers.append(rcv)
            receivers = next_receivers
            level += 1
        roots.append(
            builder.add(Collector(receivers[0], name=f"t{tree}_root"))
        )
    return builder.build(), roots


def run_dam_forest(
    config: TreeConfig,
    executor: str = "sequential",
    policy: str = "fifo",
    capacity: int = 8,
    obs: Any = None,
) -> dict[str, Any]:
    """Run the forest; pass an :class:`repro.obs.Observability` as ``obs``
    to trace the run and receive the metrics snapshot in the result."""
    from ..core import RunConfig

    program, roots = build_dam_forest(config, capacity=capacity)
    run_config = RunConfig(
        policy=policy if executor == "sequential" else None, obs=obs
    )
    summary = program.run(executor=executor, config=run_config)
    return {
        "summary": summary,
        "root_sums": [list(root.values) for root in roots],
        "real_seconds": summary.real_seconds,
        "cycles": summary.elapsed_cycles,
        "metrics": summary.metrics,
    }


# ----------------------------------------------------------------------
# Event-driven (SST-style) backend.
# ----------------------------------------------------------------------


class LeafSource(Component):
    """Emits the ramp 0..R-1, one value per cycle, on start."""

    def __init__(self, out_link, reductions: int, name: str | None = None):
        super().__init__(name=name)
        self.out_link = out_link
        self.reductions = reductions
        self.on("emit", self._on_emit)

    def start(self) -> None:
        self.schedule_self("emit", 0, 0)

    def _on_emit(self, time: int, value: int) -> None:
        self.send(self.out_link, time, value)
        if value + 1 < self.reductions:
            self.schedule_self("emit", time + 1, value + 1)


class ReduceComponent(Component):
    """Event-driven reduce node: explicit alignment buffers + fib work."""

    def __init__(self, out_link, fib_index: int, name: str | None = None):
        super().__init__(name=name)
        self.out_link = out_link
        self.fib_index = fib_index
        self.buffer_a = PortBuffer()
        self.buffer_b = PortBuffer()
        self.on("a", self._on_a)
        self.on("b", self._on_b)

    def _on_a(self, time: int, payload: int) -> None:
        self.buffer_a.push(payload)
        self._try_fire(time)

    def _on_b(self, time: int, payload: int) -> None:
        self.buffer_b.push(payload)
        self._try_fire(time)

    def _try_fire(self, time: int) -> None:
        while self.buffer_a and self.buffer_b:
            result = self.buffer_a.pop() + self.buffer_b.pop()
            result += fib(self.fib_index) * 0  # work is timed, not valued
            self.send(self.out_link, time, result, extra_delay=1)


class RootSink(Component):
    """Collects the per-wave reduction results."""

    def __init__(self, name: str | None = None):
        super().__init__(name=name)
        self.values: list[int] = []
        self.on("in", self._on_in)

    def _on_in(self, _time: int, payload: int) -> None:
        self.values.append(payload)


def build_eventsim_forest(
    config: TreeConfig, engine: Engine | ParallelEngine
) -> list[RootSink]:
    """Populate ``engine`` with the forest; returns the root sinks."""
    parallel = isinstance(engine, ParallelEngine)

    def make_link(dst: Component, port: str):
        if parallel:
            return engine.link(dst, port, latency=1)
        return Link(dst, port, latency=1)

    roots: list[RootSink] = []
    for tree in range(config.trees):
        fib_index = config.fib_for_tree(tree)
        root = RootSink(name=f"t{tree}_root")
        engine.add(root)
        roots.append(root)
        # Build the internal nodes top-down so each child knows its uplink.
        uplinks = [make_link(root, "in")]
        nodes_by_level = []
        for level in range(config.depth):
            next_uplinks = []
            level_nodes = []
            for index, uplink in enumerate(uplinks):
                node = ReduceComponent(
                    uplink, fib_index, name=f"t{tree}_n{level}_{index}"
                )
                engine.add(node)
                level_nodes.append(node)
                next_uplinks.append(make_link(node, "a"))
                next_uplinks.append(make_link(node, "b"))
            nodes_by_level.append(level_nodes)
            uplinks = next_uplinks
        for index, uplink in enumerate(uplinks):
            engine.add(
                LeafSource(
                    uplink, config.reductions, name=f"t{tree}_leaf{index}"
                )
            )
    return roots


def run_eventsim_forest(
    config: TreeConfig, workers: int = 1
) -> dict[str, Any]:
    if workers == 1:
        engine: Engine | ParallelEngine = Engine()
    else:
        engine = ParallelEngine(workers=workers)
    roots = build_eventsim_forest(config, engine)
    stats = engine.run()
    return {
        "stats": stats,
        "root_sums": [list(root.values) for root in roots],
        "real_seconds": stats.real_seconds,
        "final_time": stats.final_time,
    }
