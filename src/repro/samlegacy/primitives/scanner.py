"""Legacy FiberLookup: the cycle-based level scanner.

This is the style of code the paper's Fig. 7 shows for the original SAM
simulator: because ``tick`` is re-entered every cycle, every scrap of
progress — which input we are serving, how far through the fiber we are,
whether a separator is owed — must live in named state fields, and the
control flow is a hand-rolled state machine interleaving readiness checks
with emission.
"""

from __future__ import annotations

from ...cyclesim.channel import CycleChannel
from ...sam.tensor import Level
from ...sam.token import ABSENT, DONE, Stop
from ..base import LegacySamPrimitive

# Scanner states.
_FETCH = 0        # waiting to pop the next input reference/control token
_EMIT_SEP = 1     # owe an S0 sibling separator before the next fiber
_EMIT_FIBER = 2   # mid-fiber: emitting element self._pos of the fiber
_EMIT_STOP = 3    # owe a bumped stop token from an input stop
_EMIT_DONE = 4    # owe the final DONE pair
_HALT = 5


class LegacyFiberLookup(LegacySamPrimitive):
    """Cycle-based level scanner; one output token pair per cycle."""

    def __init__(
        self,
        level: Level,
        in_ref: CycleChannel,
        out_crd: CycleChannel,
        out_ref: CycleChannel,
        name: str | None = None,
        ii: int = 1,
    ):
        super().__init__(name=name, ii=ii)
        self.level = level
        self.in_ref = in_ref
        self.out_crd = out_crd
        self.out_ref = out_ref
        # Hand-managed state.
        self.state = _FETCH
        self.open_fiber = False
        self.cur_coords: list[int] = []
        self.cur_refs: list[int] = []
        self.pos = 0
        self.pending_stop: Stop | None = None

    def _outputs_ready(self) -> bool:
        return self.out_crd.can_push() and self.out_ref.can_push()

    def tick(self, cycle: int) -> None:
        if self.stalled():
            return
        if self.state == _HALT:
            self.finished = True
            return

        if self.state == _FETCH:
            if not self.in_ref.can_pop():
                return
            token = self.in_ref.pop()
            if token is DONE:
                if self.open_fiber:
                    self.pending_stop = Stop(0)
                    self.open_fiber = False
                    self.state = _EMIT_STOP
                    self._after_stop = _EMIT_DONE
                else:
                    self.state = _EMIT_DONE
                return
            if isinstance(token, Stop):
                self.pending_stop = token.bumped()
                self.open_fiber = False
                self.state = _EMIT_STOP
                self._after_stop = _FETCH
                return
            # A reference: load its fiber (ABSENT scans as empty).
            if token is ABSENT:
                self.cur_coords, self.cur_refs = [], []
            else:
                self.cur_coords, self.cur_refs = self.level.fiber(token)
            self.pos = 0
            if self.open_fiber:
                self.state = _EMIT_SEP
            else:
                self.state = _EMIT_FIBER
            self.open_fiber = True
            return

        if self.state == _EMIT_SEP:
            if not self._outputs_ready():
                return
            self.out_crd.push(Stop(0))
            self.out_ref.push(Stop(0))
            self.charge()
            self.state = _EMIT_FIBER
            return

        if self.state == _EMIT_FIBER:
            if self.pos >= len(self.cur_coords):
                self.state = _FETCH
                # Fall through next cycle; a fetch this cycle would be a
                # second action, which the cycle model forbids.
                return
            if not self._outputs_ready():
                return
            self.out_crd.push(self.cur_coords[self.pos])
            self.out_ref.push(self.cur_refs[self.pos])
            self.charge()
            self.pos += 1
            return

        if self.state == _EMIT_STOP:
            if not self._outputs_ready():
                return
            self.out_crd.push(self.pending_stop)
            self.out_ref.push(self.pending_stop)
            self.pending_stop = None
            self.charge()
            self.state = self._after_stop
            return

        if self.state == _EMIT_DONE:
            if not self._outputs_ready():
                return
            self.out_crd.push(DONE)
            self.out_ref.push(DONE)
            self.state = _HALT
            self.finished = True
            return
