"""Coordinate bookkeeping primitives: CrdDrop and CrdHold.

* **CrdDrop** removes outer coordinates whose inner fiber turned out empty
  (after an intersect, a row may contribute no output).  It consumes the
  outer crd stream plus the inner crd stream that resulted from it, and
  re-emits only the surviving outer coordinates.

* **CrdHold** replicates the current outer coordinate once per inner
  payload, producing a stream aligned with the inner one (used to carry
  row indices alongside per-element streams, e.g. SDDMM's dense gathers).
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ...core.ops import FusedOps
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class CrdDrop(SamContext):
    """Keep outer coordinates with nonempty inner fibers."""

    def __init__(
        self,
        in_outer_crd: Receiver,
        in_inner_crd: Receiver,
        out_crd: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_outer_crd = in_outer_crd
        self.in_inner_crd = in_inner_crd
        self.out_crd = out_crd
        self.register(in_outer_crd, in_inner_crd, out_crd)

    def run(self):
        deq_outer = self.in_outer_crd.dequeue()
        deq_inner = self.in_inner_crd.dequeue()
        enq = self.out_crd.enqueue(None)
        # Hot path: one tick per surviving inner payload, refill inner.
        scan = FusedOps(self.tick(), deq_inner)
        emit_pull = FusedOps(enq, self.tick_control(), deq_outer)
        skip_pull = FusedOps(self.tick_control(), deq_outer)
        emit_next = FusedOps(enq, deq_outer)
        outer = yield deq_outer
        while True:
            if outer is DONE:
                inner = yield deq_inner
                assert inner is DONE, (
                    f"{self.name}: outer done but inner sent {inner!r}"
                )
                enq.data = DONE
                yield enq
                return
            if outer.__class__ is Stop:
                # An empty outer fiber: the inner stream presents the
                # matching one-deeper stop; mirror the outer stop through.
                inner = yield deq_inner
                assert isinstance(inner, Stop) and inner.level == outer.level + 1, (
                    f"{self.name}: outer stop {outer!r} paired with inner "
                    f"{inner!r} (expected Stop({outer.level + 1}))"
                )
                enq.data = outer
                outer = (yield emit_pull)[2]
                continue
            # Scan this outer coordinate's inner fiber.
            nonempty = False
            inner = yield deq_inner
            while inner.__class__ is not Stop:
                assert inner is not DONE, (
                    f"{self.name}: inner stream done mid-fiber"
                )
                nonempty = True
                inner = (yield scan)[1]
            if inner.level >= 1:
                # Inner boundary also closes outer levels: mirror it on the
                # outer stream (consume) and the output (emit, one level
                # shallower).
                if nonempty:
                    enq.data = outer
                    matching = (yield emit_pull)[2]
                else:
                    matching = (yield skip_pull)[1]
                expected = inner.level - 1
                assert isinstance(matching, Stop) and matching.level == expected, (
                    f"{self.name}: expected outer Stop({expected}), got "
                    f"{matching!r}"
                )
                enq.data = matching
                outer = (yield emit_next)[1]
            elif nonempty:
                enq.data = outer
                outer = (yield emit_pull)[2]
            else:
                outer = (yield skip_pull)[1]


class CrdHold(SamContext):
    """Emit the held outer coordinate once per inner payload."""

    def __init__(
        self,
        in_outer_crd: Receiver,
        in_inner_crd: Receiver,
        out_crd: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_outer_crd = in_outer_crd
        self.in_inner_crd = in_inner_crd
        self.out_crd = out_crd
        self.register(in_outer_crd, in_inner_crd, out_crd)

    def run(self):
        deq_outer = self.in_outer_crd.dequeue()
        deq_inner = self.in_inner_crd.dequeue()
        enq = self.out_crd.enqueue(None)
        # Hot path: emit the held outer crd, tick, refill inner.
        hold_step = FusedOps(enq, self.tick(), deq_inner)
        emit_pull = FusedOps(enq, self.tick_control(), deq_outer)
        outer = yield deq_outer
        while True:
            if outer is DONE:
                inner = yield deq_inner
                assert inner is DONE, (
                    f"{self.name}: outer done but inner sent {inner!r}"
                )
                enq.data = DONE
                yield enq
                return
            if outer.__class__ is Stop:
                # Empty outer fiber: pass the inner stream's matching
                # one-deeper stop through (output aligns with the inner).
                inner = yield deq_inner
                assert isinstance(inner, Stop) and inner.level == outer.level + 1, (
                    f"{self.name}: outer stop {outer!r} paired with inner "
                    f"{inner!r} (expected Stop({outer.level + 1}))"
                )
                enq.data = inner
                outer = (yield emit_pull)[2]
                continue
            inner = yield deq_inner
            while inner.__class__ is not Stop:
                assert inner is not DONE, (
                    f"{self.name}: inner stream done mid-fiber"
                )
                enq.data = outer
                inner = (yield hold_step)[2]
            enq.data = inner
            if inner.level >= 1:
                matching = (yield emit_pull)[2]
                expected = inner.level - 1
                assert (
                    isinstance(matching, Stop)
                    and matching.level == expected
                ), (
                    f"{self.name}: expected outer Stop({expected}), "
                    f"got {matching!r}"
                )
                outer = yield deq_outer
            else:
                outer = (yield emit_pull)[2]
