"""Benchmark harness utilities: workloads, table formatting, timers."""

from .fib import fib
from .reduction_tree import (
    TreeConfig,
    build_dam_forest,
    build_eventsim_forest,
    run_dam_forest,
    run_eventsim_forest,
)
from .table import TextTable

__all__ = [
    "fib",
    "TreeConfig",
    "build_dam_forest",
    "build_eventsim_forest",
    "run_dam_forest",
    "run_eventsim_forest",
    "TextTable",
]
