"""Scheduling policies for the cooperative executor (paper Section VI-A).

The paper observes that OS scheduling policy materially affects real
simulation performance: a boosting fair scheduler (Linux CFS) preempts the
current thread whenever it wakes another, which on oversaturated
producer/consumer graphs causes an avalanche of context switches, while a
FIFO run-to-block policy (SCHED_FIFO) lets each context run until it must
wait.

We cannot set Linux RT scheduling classes from a portable test suite (and
the GIL would mask them anyway), so the cooperative executor models the two
policies directly and counts switches/wakeups/preemptions — the quantities
behind Table I.  Simulated results are identical under every policy; only
real execution order and the counters change.

Policies manage :class:`_ContextState` objects opaquely; they only rely on
an ``in_ready`` flag to prevent double-queuing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional


class SchedulingPolicy:
    """Ready-queue discipline for the sequential executor."""

    #: Max generator resumptions per slice, or None for run-to-block.
    timeslice: Optional[int] = None
    name = "abstract"

    def push(self, state: Any, woken: bool) -> None:
        """Add a runnable context (``woken`` = it was just unblocked)."""
        raise NotImplementedError

    def pop(self) -> Any:
        raise NotImplementedError

    def __bool__(self) -> bool:
        raise NotImplementedError


class FifoPolicy(SchedulingPolicy):
    """Run-to-block FIFO: the SCHED_FIFO analog.

    Contexts run until they block; woken contexts join the back of the
    queue.  This minimizes context switches and lets slow contexts run for
    as long as they have work — the behaviour Table I credits for the
    2.3x speedup on oversaturated graphs.
    """

    timeslice = None
    name = "fifo"

    def __init__(self) -> None:
        self._queue: deque[Any] = deque()

    def push(self, state: Any, woken: bool) -> None:
        if state.in_ready:
            return
        state.in_ready = True
        self._queue.append(state)

    def pop(self) -> Any:
        state = self._queue.popleft()
        state.in_ready = False
        return state

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class FairPolicy(SchedulingPolicy):
    """A CFS-like policy: short timeslices plus wakeup boosting.

    Newly woken contexts jump the queue (the priority boost CFS applies),
    and every context is preempted after ``timeslice`` operations.  On
    producer/consumer graphs this produces the ping-ponging the paper
    describes: each wake immediately preempts the waker.
    """

    name = "fair"

    def __init__(self, timeslice: int = 64, boost: bool = True):
        if timeslice < 1:
            raise ValueError("timeslice must be >= 1")
        self.timeslice = timeslice
        self.boost = boost
        self._queue: deque[Any] = deque()

    def push(self, state: Any, woken: bool) -> None:
        if state.in_ready:
            return
        state.in_ready = True
        if woken and self.boost:
            self._queue.appendleft(state)
        else:
            self._queue.append(state)

    def pop(self) -> Any:
        state = self._queue.popleft()
        state.in_ready = False
        return state

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


def make_policy(spec: str | SchedulingPolicy) -> SchedulingPolicy:
    """Resolve a policy from a name ("fifo", "fair") or pass one through."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    if spec == "fifo":
        return FifoPolicy()
    if spec == "fair":
        return FairPolicy()
    raise ValueError(f"unknown scheduling policy {spec!r}")
