"""Legacy value-array lookup."""

from __future__ import annotations

import numpy as np

from ...cyclesim.channel import CycleChannel
from ...sam.token import ABSENT, DONE, Stop
from ..base import LegacySamPrimitive


class LegacyArrayVals(LegacySamPrimitive):
    """Reference stream in, value stream out; one token per cycle."""

    def __init__(
        self,
        vals: np.ndarray,
        in_ref: CycleChannel,
        out_val: CycleChannel,
        name: str | None = None,
        ii: int = 1,
    ):
        super().__init__(name=name, ii=ii)
        self.vals = np.asarray(vals, dtype=np.float64)
        self.in_ref = in_ref
        self.out_val = out_val

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self.stalled():
            return
        if not (self.in_ref.can_pop() and self.out_val.can_push()):
            return
        token = self.in_ref.pop()
        self.charge()
        if token is DONE:
            self.out_val.push(DONE)
            self.finished = True
        elif isinstance(token, Stop):
            self.out_val.push(token)
        elif token is ABSENT:
            self.out_val.push(0.0)
        else:
            self.out_val.push(float(self.vals[token]))
