"""Exception types raised by the DAM core.

The framework distinguishes three failure families:

* **Protocol errors** (:class:`ChannelClosed`) — part of normal simulation
  control flow.  A receiver that dequeues from a channel whose sender has
  finished (and whose data has been drained) receives :class:`ChannelClosed`.
  Contexts may catch it to wind down gracefully; if it escapes a context's
  generator the executor treats the context as *cleanly finished*.

* **Simulation errors** (:class:`DeadlockError`, :class:`SimulationError`) —
  the simulated system misbehaved: a dependency cycle of blocked contexts, or
  a user context raised an unexpected exception.

* **Construction errors** (:class:`GraphConstructionError`) — the program was
  mis-wired: a dangling channel endpoint, a handle registered twice, and so
  on.  These are raised at :meth:`ProgramBuilder.build` time, before any
  simulation starts.
"""

from __future__ import annotations


class DamError(Exception):
    """Base class for all errors raised by the repro package."""


class ChannelClosed(DamError):
    """Raised on dequeue/peek of a drained channel whose sender finished.

    This mirrors DAM-RS's ``DequeueError``: it is the normal way for
    termination to propagate through a dataflow graph that does not use
    explicit done tokens.
    """

    def __init__(self, channel_name: str = "<channel>"):
        super().__init__(f"channel {channel_name} is closed and drained")
        self.channel_name = channel_name


class DeadlockError(DamError):
    """Raised when no context can make progress but some are unfinished.

    The message lists each blocked context and the operation it is blocked
    on, which is the primary debugging aid for undersized channels (see the
    stochastic-deadlock discussion in Section VIII of the paper).
    """

    def __init__(self, blocked: list[str]):
        detail = "; ".join(blocked) if blocked else "<no detail>"
        super().__init__(f"simulation deadlocked: {detail}")
        self.blocked = blocked


class SimulationError(DamError):
    """A user context raised an unexpected exception during simulation."""

    def __init__(self, context_name: str, original: BaseException):
        super().__init__(f"context {context_name!r} failed: {original!r}")
        self.context_name = context_name
        self.original = original


class GraphConstructionError(DamError):
    """The program graph is structurally invalid (dangling channel, etc.)."""
