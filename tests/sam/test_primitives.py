"""Stream-level unit tests for every SAM primitive.

Each test feeds explicit token streams through one block (via
``repro.sam.testing.run_block``) and checks the exact output streams,
including control tokens — these encode the SAM stream grammar rules the
kernel graphs rely on.
"""

import pytest

from repro.sam.primitives import (
    ArrayVals,
    BinaryAlu,
    CrdDrop,
    CrdHold,
    FiberLookup,
    Intersect,
    Reduce,
    Repeat,
    RepeatSigGen,
    SpaccV1,
    UnaryAlu,
    Union,
)
from repro.sam.primitives.filter import ValDrop
from repro.sam.tensor import CompressedLevel, DenseLevel
from repro.sam.testing import run_block
from repro.sam.token import ABSENT, DONE, REPEAT, Stop

S0, S1, S2 = Stop(0), Stop(1), Stop(2)


class TestFiberLookup:
    def level(self):
        # Fibers: 0 -> [1, 4], 1 -> [], 2 -> [0, 2, 3]
        return CompressedLevel(seg=[0, 2, 2, 5], crd=[1, 4, 0, 2, 3])

    def run_scan(self, level, in_ref):
        return run_block(
            lambda rcv, snd: FiberLookup(level, rcv[0], snd[0], snd[1]),
            [in_ref],
            2,
        )

    def test_root_scan(self):
        crd, ref = self.run_scan(self.level(), [0, DONE])
        assert crd == [1, 4, S0, DONE]
        assert ref == [0, 1, S0, DONE]

    def test_sibling_fibers_get_s0_separator(self):
        crd, ref = self.run_scan(self.level(), [0, 2, S0, DONE])
        assert crd == [1, 4, S0, 0, 2, 3, S1, DONE]
        assert ref == [0, 1, S0, 2, 3, 4, S1, DONE]

    def test_input_stop_levels_are_bumped(self):
        crd, _ = self.run_scan(self.level(), [0, S0, 2, S1, DONE])
        assert crd == [1, 4, S1, 0, 2, 3, S2, DONE]

    def test_empty_fiber_keeps_boundaries(self):
        crd, _ = self.run_scan(self.level(), [1, 0, S0, DONE])
        assert crd == [S0, 1, 4, S1, DONE]

    def test_absent_ref_scans_empty(self):
        crd, _ = self.run_scan(self.level(), [ABSENT, 0, S0, DONE])
        assert crd == [S0, 1, 4, S1, DONE]

    def test_dense_level(self):
        crd, ref = self.run_scan(DenseLevel(3), [2, S0, DONE])
        assert crd == [0, 1, 2, S1, DONE]
        assert ref == [6, 7, 8, S1, DONE]


class TestArrayVals:
    def test_lookup_and_controls(self):
        (out,) = run_block(
            lambda rcv, snd: ArrayVals([1.0, 2.0, 3.0], rcv[0], snd[0]),
            [[2, 0, S0, 1, S1, DONE]],
            1,
        )
        assert out == [3.0, 1.0, S0, 2.0, S1, DONE]

    def test_absent_reads_zero(self):
        (out,) = run_block(
            lambda rcv, snd: ArrayVals([5.0], rcv[0], snd[0]),
            [[ABSENT, 0, S0, DONE]],
            1,
        )
        assert out == [0.0, 5.0, S0, DONE]


class TestRepeat:
    def test_repsiggen(self):
        (out,) = run_block(
            lambda rcv, snd: RepeatSigGen(rcv[0], snd[0]),
            [[7, 9, S0, 3, S1, DONE]],
            1,
        )
        assert out == [REPEAT, REPEAT, S0, REPEAT, S1, DONE]

    def test_repeat_root_per_group(self):
        (out,) = run_block(
            lambda rcv, snd: Repeat(rcv[0], rcv[1], snd[0]),
            [[0, DONE], [REPEAT, REPEAT, REPEAT, S0, DONE]],
            1,
        )
        assert out == [0, 0, 0, S0, DONE]

    def test_repeat_advances_refs_and_consumes_ref_stops(self):
        (out,) = run_block(
            lambda rcv, snd: Repeat(rcv[0], rcv[1], snd[0]),
            [
                [10, 20, S0, DONE],
                [REPEAT, REPEAT, S0, REPEAT, S1, DONE],
            ],
            1,
        )
        assert out == [10, 10, S0, 20, S1, DONE]

    def test_repeat_empty_group(self):
        (out,) = run_block(
            lambda rcv, snd: Repeat(rcv[0], rcv[1], snd[0]),
            [[5, 6, S0, DONE], [S0, REPEAT, S1, DONE]],
            1,
        )
        assert out == [S0, 6, S1, DONE]


class TestJoiners:
    def intersect(self, a_crd, a_ref, b_crd, b_ref):
        return run_block(
            lambda rcv, snd: Intersect(
                rcv[0], rcv[1], rcv[2], rcv[3], snd[0], snd[1], snd[2]
            ),
            [a_crd, a_ref, b_crd, b_ref],
            3,
        )

    def union(self, a_crd, a_ref, b_crd, b_ref):
        return run_block(
            lambda rcv, snd: Union(
                rcv[0], rcv[1], rcv[2], rcv[3], snd[0], snd[1], snd[2]
            ),
            [a_crd, a_ref, b_crd, b_ref],
            3,
        )

    def test_intersect_matches_only(self):
        crd, ref1, ref2 = self.intersect(
            [0, 2, 5, S0, DONE],
            [10, 11, 12, S0, DONE],
            [2, 3, 5, S0, DONE],
            [20, 21, 22, S0, DONE],
        )
        assert crd == [2, 5, S0, DONE]
        assert ref1 == [11, 12, S0, DONE]
        assert ref2 == [20, 22, S0, DONE]

    def test_intersect_empty_result(self):
        crd, _, _ = self.intersect(
            [0, S0, DONE], [1, S0, DONE], [3, S0, DONE], [2, S0, DONE]
        )
        assert crd == [S0, DONE]

    def test_intersect_multi_fiber(self):
        crd, _, _ = self.intersect(
            [1, S0, 2, S1, DONE],
            [0, S0, 1, S1, DONE],
            [1, S0, 3, S1, DONE],
            [0, S0, 1, S1, DONE],
        )
        assert crd == [1, S0, S1, DONE]

    def test_union_merges_with_absent(self):
        crd, ref1, ref2 = self.union(
            [0, 2, S0, DONE],
            [10, 11, S0, DONE],
            [1, 2, S0, DONE],
            [20, 21, S0, DONE],
        )
        assert crd == [0, 1, 2, S0, DONE]
        assert ref1 == [10, ABSENT, 11, S0, DONE]
        assert ref2 == [ABSENT, 20, 21, S0, DONE]

    def test_union_one_side_empty(self):
        crd, ref1, ref2 = self.union(
            [S0, DONE], [S0, DONE], [4, S0, DONE], [9, S0, DONE]
        )
        assert crd == [4, S0, DONE]
        assert ref1 == [ABSENT, S0, DONE]
        assert ref2 == [9, S0, DONE]

    def test_misaligned_stops_detected(self):
        from repro.core import SimulationError

        with pytest.raises(SimulationError):
            self.intersect([S0, DONE], [S0, DONE], [S1, DONE], [S1, DONE])


class TestAlus:
    def test_binary_alu_alignment(self):
        (out,) = run_block(
            lambda rcv, snd: BinaryAlu(rcv[0], rcv[1], snd[0], lambda a, b: a + b),
            [[1.0, S0, 2.0, S1, DONE], [10.0, S0, 20.0, S1, DONE]],
            1,
        )
        assert out == [11.0, S0, 22.0, S1, DONE]

    def test_unary_alu(self):
        (out,) = run_block(
            lambda rcv, snd: UnaryAlu(rcv[0], snd[0], lambda x: -x),
            [[1.0, 2.0, S0, DONE]],
            1,
        )
        assert out == [-1.0, -2.0, S0, DONE]


class TestReduce:
    def test_innermost_fiber_sum(self):
        (out,) = run_block(
            lambda rcv, snd: Reduce(rcv[0], snd[0]),
            [[1.0, 2.0, S0, 3.0, S1, DONE]],
            1,
        )
        assert out == [3.0, 3.0, S0, DONE]

    def test_empty_fiber_reduces_to_identity(self):
        (out,) = run_block(
            lambda rcv, snd: Reduce(rcv[0], snd[0]),
            [[S0, 4.0, S1, DONE]],
            1,
        )
        assert out == [0.0, 4.0, S0, DONE]

    def test_custom_fn(self):
        (out,) = run_block(
            lambda rcv, snd: Reduce(rcv[0], snd[0], fn=max, identity=float("-inf")),
            [[3.0, 7.0, 1.0, S1, DONE]],
            1,
        )
        assert out == [7.0, S0, DONE]

    def test_uninhabited_space_emits_no_value_when_suppressing(self):
        """With suppress_uninhabited (dense-innermost graphs), a
        higher-level stop before any payload/S0 closes an empty operand's
        space: the stop is decremented but no zero is emitted (keeps
        downstream ALU alignment for empty tensors)."""
        (out,) = run_block(
            lambda rcv, snd: Reduce(rcv[0], snd[0], suppress_uninhabited=True),
            [[S2, DONE]],
            1,
        )
        assert out == [S1, DONE]

    def test_default_emits_identity_for_leading_empty_fiber(self):
        """Without suppression (sparse-innermost graphs like SpMSpM), a
        leading empty fiber is a real element and must produce its zero."""
        (out,) = run_block(
            lambda rcv, snd: Reduce(rcv[0], snd[0]),
            [[S1, 2.0, S2, DONE]],
            1,
        )
        assert out == [0.0, S0, 2.0, S1, DONE]

    def test_leading_s0_still_counts_as_empty_fiber(self):
        (out,) = run_block(
            lambda rcv, snd: Reduce(rcv[0], snd[0]),
            [[S0, S1, DONE]],
            1,
        )
        # Two sibling innermost fibers, both empty: two zeros.
        assert out == [0.0, 0.0, S0, DONE]

    def test_consecutive_virgin_stops_all_suppressed(self):
        (out,) = run_block(
            lambda rcv, snd: Reduce(rcv[0], snd[0], suppress_uninhabited=True),
            [[S1, S1, 2.0, S2, DONE]],
            1,
        )
        assert out == [S0, S0, 2.0, S1, DONE]


class TestSpacc:
    def test_merges_subfibers(self):
        crd, val = run_block(
            lambda rcv, snd: SpaccV1(rcv[0], rcv[1], snd[0], snd[1]),
            [
                [1, 3, S0, 0, 3, S1, DONE],
                [1.0, 2.0, S0, 4.0, 8.0, S1, DONE],
            ],
            2,
        )
        assert crd == [0, 1, 3, S0, DONE]
        assert val == [4.0, 1.0, 10.0, S0, DONE]

    def test_multiple_outer_groups(self):
        crd, val = run_block(
            lambda rcv, snd: SpaccV1(rcv[0], rcv[1], snd[0], snd[1]),
            [
                [0, S1, 1, S2, DONE],
                [5.0, S1, 6.0, S2, DONE],
            ],
            2,
        )
        assert crd == [0, S0, 1, S1, DONE]
        assert val == [5.0, S0, 6.0, S1, DONE]


class TestCrd:
    def test_crd_hold_replicates_outer(self):
        (out,) = run_block(
            lambda rcv, snd: CrdHold(rcv[0], rcv[1], snd[0]),
            [
                [7, 9, S0, DONE],
                [0, 1, S0, 2, S1, DONE],
            ],
            1,
        )
        assert out == [7, 7, S0, 9, S1, DONE]

    def test_crd_drop_removes_empty_fibers(self):
        (out,) = run_block(
            lambda rcv, snd: CrdDrop(rcv[0], rcv[1], snd[0]),
            [
                [3, 5, 8, S0, DONE],
                [1, S0, S0, 2, S1, DONE],  # fiber for 5 is empty
            ],
            1,
        )
        assert out == [3, 8, S0, DONE]


class TestValDrop:
    def test_drops_exact_zeros(self):
        (out,) = run_block(
            lambda rcv, snd: ValDrop(rcv[0], snd[0]),
            [[1.0, 0.0, 2.0, S0, 0.0, S1, DONE]],
            1,
        )
        assert out == [1.0, 2.0, S0, S1, DONE]
