"""Serve quickstart: simulation-as-a-service in one file.

Three ideas in ~60 lines of user code:

* a :class:`ProgramSpec` is a *declarative* run request — a named SAM
  graph, encoded tensor payloads, and a serialized ``RunConfig`` — that
  survives a trip through JSON;
* a :class:`SimServer` runs specs for many tenants with admission
  control, request coalescing, and a compiled-plan cache, streaming the
  summary back as ndjson;
* the service boundary adds **no semantics**: the served result is
  bit-identical to running the same spec directly in process.

This example starts the server on a background thread; in production
you'd run ``python -m repro.serve --port 8750`` and point
:class:`ServeClient` at it.

Run:  PYTHONPATH=src python examples/serve_quickstart.py
"""

from repro.sam import CsfTensor
from repro.sam.spec import ProgramSpec
from repro.sam.tensor import random_dense
from repro.serve import (
    ServeClient,
    ServeConfig,
    TenantBudgetError,
    TenantPolicy,
    start_in_thread,
)


def make_spec():
    """A sparse-matrix multiply request, entirely from data."""
    b = CsfTensor.from_dense(random_dense(8, 8, density=0.3, seed=1), "cc")
    ct = CsfTensor.from_dense(random_dense(8, 8, density=0.3, seed=2), "cc")
    return ProgramSpec.from_graph_inputs(
        "spmspm",
        {"b": b, "c_transposed": ct},
        params={"depth": 4},
        executor="sequential",
    )


def main():
    spec = make_spec()

    # The spec is pure data: it round-trips through JSON unchanged.
    wire = spec.to_json()
    print(f"spec: graph={spec.graph}, {len(wire)} bytes on the wire")

    # Ground truth: run the same spec directly in this process.
    built, local = spec.run()
    print(f"local run: {local.elapsed_cycles} simulated cycles")

    # A server with two tenants: 'team-a' is unconstrained, 'guest' has
    # a zero-second budget and will be rejected with a typed error.
    handle = start_in_thread(
        ServeConfig(
            max_concurrent=2,
            tenants={
                "guest": TenantPolicy(name="guest", run_budget_s=0.0),
            },
        )
    )
    try:
        client = ServeClient(handle.address)

        # First request: a plan-cache miss (the server has never seen
        # this graph shape).
        first = client.submit(spec, tenant="team-a", request_id="demo-1")
        assert first.summary.elapsed_cycles == local.elapsed_cycles
        assert first.result_dense().tobytes() == built.result_dense().tobytes()
        print(
            f"served run 1: {first.summary.elapsed_cycles} cycles "
            f"(bit-identical), plan={first.plan}, tag={first.summary.tag}"
        )

        # Second request, same shape: the server replays the cached plan.
        second = client.submit(spec, tenant="team-a", request_id="demo-2")
        print(f"served run 2: plan={second.plan}")

        # The over-budget tenant is shed with the typed error — the same
        # exception type the server raised, rebuilt client-side.
        try:
            client.submit(spec, tenant="guest")
        except TenantBudgetError as exc:
            print(f"guest rejected as designed: {exc}")

        # /metrics is the obs registry as a service endpoint.
        metrics = client.metrics()
        print(
            "metrics: plan_cache="
            f"{metrics['plan_cache']['hits']} hit / "
            f"{metrics['plan_cache']['misses']} miss, "
            f"tenants={sorted(metrics['tenants'])}"
        )
    finally:
        handle.stop()
    print("done — server stopped cleanly")


if __name__ == "__main__":
    main()
