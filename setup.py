"""Setup shim: enables legacy editable installs on environments without
the `wheel` package (PEP 517 editable wheels need it; `setup.py develop`
does not). Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
