"""Deprecated compatibility shim — the tracer now lives in :mod:`repro.obs`.

The original ``Tracer`` only supported the sequential executor (the
threaded executor's interleaving would have needed per-event locking that
distorts the run being observed).  Its replacement,
:class:`repro.obs.TraceCollector`, gives every context its own lock-free
event buffer and merges them deterministically, so tracing works on both
executors — plus exporters (Perfetto/Chrome JSON, CSV), a metrics
registry, and deadlock stall reports via :class:`repro.obs.Observability`.

This module keeps the old import path and query API working unchanged
(``Tracer``, ``TraceEvent``, ``completion_times()`` and friends, and the
``SequentialExecutor(tracer=...)`` keyword), so calibration workflows
built on it keep passing.  New code should use :mod:`repro.obs`.
"""

from __future__ import annotations

from ..obs.events import TraceEvent
from ..obs.trace import TraceCollector


class Tracer(TraceCollector):
    """Deprecated alias of :class:`repro.obs.TraceCollector`.

    Kept so existing ``SequentialExecutor(tracer=Tracer())`` call sites
    and trace queries (``for_context``, ``for_channel``, ``kinds``,
    ``completion_times``) continue to work; events are now returned in
    the deterministic merged ``(time, context, seq)`` order rather than
    raw append order.
    """


__all__ = ["TraceEvent", "Tracer"]
