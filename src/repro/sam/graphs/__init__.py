"""SAM kernel graphs: TACO-style dataflow programs built from primitives.

Each builder returns a :class:`~repro.sam.graphs.common.KernelGraph`
bundling the DAM program with the writer contexts needed to materialize
and verify the output tensor.  All graphs are validated against the dense
numpy references in :mod:`repro.sam.reference`.
"""

from .common import KernelGraph, SamGraphBuilder
from .mmadd import build_mmadd
from .mha import ParallelMha, build_parallel_mha, build_sparse_mha
from .sddmm import build_sddmm
from .spmspm import build_spmspm
from .spmspm_gustavson import build_spmspm_gustavson

__all__ = [
    "KernelGraph",
    "SamGraphBuilder",
    "build_mmadd",
    "build_spmspm",
    "build_spmspm_gustavson",
    "build_sddmm",
    "build_sparse_mha",
    "build_parallel_mha",
    "ParallelMha",
]
