"""Case study walkthrough: sparse tensor algebra on SAM-on-DAM (Sec. VIII).

Builds and runs the three SAM kernels plus sparse multi-head attention,
verifies each against dense numpy, compares against the legacy
cycle-based simulator, and demonstrates the timing-parameter knob the
calibration study tunes.

Run:  python examples/sparse_kernels.py
"""

import numpy as np

from repro.sam import CsfTensor
from repro.sam.graphs import build_mmadd, build_sddmm, build_sparse_mha, build_spmspm
from repro.sam.primitives import TimingParams
from repro.sam.reference import sddmm as ref_sddmm
from repro.sam.reference import sparse_mha as ref_mha
from repro.sam.tensor import random_dense
from repro.samlegacy import build_legacy_spmspm


def main():
    print("== MMAdd: X = B + C (50% nonzeros) ==")
    b = random_dense(12, 12, density=0.5, seed=1)
    c = random_dense(12, 12, density=0.5, seed=2)
    kernel = build_mmadd(CsfTensor.from_dense(b, "cc"), CsfTensor.from_dense(c, "cc"))
    summary = kernel.run()
    print(f"  correct={np.allclose(kernel.result_dense(), b + c)}  "
          f"cycles={summary.elapsed_cycles}  contexts={kernel.context_count}")

    print("== SpMSpM: X = B @ C (10% nonzeros), both simulators ==")
    bm = random_dense(12, 12, density=0.1, seed=3)
    ct = random_dense(12, 12, density=0.1, seed=4)
    dam = build_spmspm(CsfTensor.from_dense(bm, "cc"), CsfTensor.from_dense(ct, "cc"))
    dam_summary = dam.run()
    legacy = build_legacy_spmspm(
        CsfTensor.from_dense(bm, "cc"), CsfTensor.from_dense(ct, "cc")
    )
    legacy_stats = legacy.run()
    assert np.allclose(dam.result_dense(), legacy.result_dense())
    assert np.allclose(dam.result_dense(), bm @ ct.T)
    print(f"  DAM:    {dam_summary.real_seconds:.4f}s "
          f"({dam_summary.ops_executed} ops)")
    print(f"  legacy: {legacy_stats.real_seconds:.4f}s "
          f"({legacy_stats.ticks} component-ticks)")

    print("== SDDMM: X = S .* (A @ B^T) (30% nonzeros) ==")
    s = random_dense(10, 10, density=0.3, seed=5)
    a = random_dense(10, 6, density=1.0, seed=6)
    bt = random_dense(10, 6, density=1.0, seed=7)
    kernel = build_sddmm(CsfTensor.from_dense(s, "cc"), a, bt)
    kernel.run()
    print(f"  correct={np.allclose(kernel.result_dense(), ref_sddmm(s, a, bt))}")

    print("== Sparse MHA (40% nonzeros) with timing parameters ==")
    rng = np.random.default_rng(8)
    H, N, d = 2, 10, 4
    mask = (rng.random((H, N, N)) < 0.4).astype(float)
    for h in range(H):
        np.fill_diagonal(mask[h], 1.0)
    q = rng.standard_normal((H, N, d))
    k = rng.standard_normal((H, N, d))
    v = rng.standard_normal((H, N, d))
    for timing in [TimingParams(), TimingParams(ii=2, stop_bubble=3)]:
        kernel = build_sparse_mha(
            CsfTensor.from_dense(mask, "dcc"), q, k, v, timing=timing
        )
        summary = kernel.run()
        assert np.allclose(kernel.result_dense(), ref_mha(q, k, v, mask))
        print(f"  timing={timing}: cycles={summary.elapsed_cycles} "
              "(values identical — timing changes only the clock)")


if __name__ == "__main__":
    main()
