"""Execution runtimes for DAM programs.

Three executors share identical simulated semantics:

* :class:`SequentialExecutor` — deterministic cooperative scheduler,
  single-threaded, with pluggable scheduling policies (Table I study).
* :class:`ThreadedExecutor` — one OS thread per context, SVA/SVP-style
  pairwise synchronization (the paper's runtime).
* :class:`ProcessExecutor` — graph partitions across forked worker
  processes, cut channels bridged by shared-memory shuttles; the route
  around the GIL to the paper's multi-core wall-clock speedups.
"""

from .base import Executor, RunSummary
from .partition import PartitionPlan, channel_weights, plan_partition
from .partitioned import ProcessExecutor
from .policies import FairPolicy, FifoPolicy, SchedulingPolicy, make_policy
from .sequential import SequentialExecutor
from .threaded import ThreadedExecutor

__all__ = [
    "Executor",
    "RunSummary",
    "SchedulingPolicy",
    "FifoPolicy",
    "FairPolicy",
    "make_policy",
    "SequentialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "PartitionPlan",
    "channel_weights",
    "plan_partition",
]
