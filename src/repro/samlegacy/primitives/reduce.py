"""Legacy Reduce: cycle-based innermost-fiber reduction.

The accumulator and the "owe a decremented stop" flag persist across
cycles; emitting the sum and the stop takes two cycles when both are due.
"""

from __future__ import annotations

from typing import Callable

from ...cyclesim.channel import CycleChannel
from ...sam.token import DONE, Stop
from ..base import LegacySamPrimitive

_CONSUME = 0
_EMIT_STOP = 1
_EMIT_DONE = 2
_HALT = 3


class LegacyReduce(LegacySamPrimitive):
    def __init__(
        self,
        in_val: CycleChannel,
        out_val: CycleChannel,
        fn: Callable[[float, float], float] = lambda a, b: a + b,
        identity: float = 0.0,
        suppress_uninhabited: bool = False,
        name: str | None = None,
        ii: int = 1,
    ):
        super().__init__(name=name, ii=ii)
        self.suppress_uninhabited = suppress_uninhabited
        self.in_val = in_val
        self.out_val = out_val
        self.fn = fn
        self.identity = identity
        self.accumulator = identity
        self.state = _CONSUME
        self.pending_stop: Stop | None = None
        # See repro.sam.primitives.reduce: higher-level stops arriving
        # before any payload/S0 close uninhabited space (no value emitted).
        self.virgin = True

    def tick(self, cycle: int) -> None:
        if self.stalled():
            return
        if self.state == _HALT:
            self.finished = True
            return

        if self.state == _CONSUME:
            if not self.in_val.can_pop():
                return
            token = self.in_val.front()
            if token is DONE:
                self.in_val.pop()
                self.state = _EMIT_DONE
                return
            if isinstance(token, Stop):
                suppress = (
                    self.suppress_uninhabited
                    and self.virgin
                    and token.level >= 1
                )
                if token.level == 0:
                    self.virgin = False
                # Emitting the sum needs output space; only then consume.
                if not self.out_val.can_push():
                    return
                self.in_val.pop()
                self.charge()
                if not suppress:
                    self.out_val.push(self.accumulator)
                self.accumulator = self.identity
                if token.level >= 1:
                    self.pending_stop = Stop(token.level - 1)
                    self.state = _EMIT_STOP
                return
            self.in_val.pop()
            self.charge()
            self.virgin = False
            self.accumulator = self.fn(self.accumulator, token)
            return

        if self.state == _EMIT_STOP:
            if not self.out_val.can_push():
                return
            self.out_val.push(self.pending_stop)
            self.charge()
            self.pending_stop = None
            self.state = _CONSUME
            return

        if self.state == _EMIT_DONE:
            if not self.out_val.can_push():
                return
            self.out_val.push(DONE)
            self.state = _HALT
            self.finished = True
            return
