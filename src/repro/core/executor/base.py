"""Executor interface and run summaries."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..time import Time

if TYPE_CHECKING:  # pragma: no cover
    from ..program import Program


@dataclass
class RunSummary:
    """The result of executing a program.

    ``elapsed_cycles`` is the simulated makespan: the largest finite local
    time any context reached before finishing.  Both executors must report
    identical ``elapsed_cycles`` and ``context_times`` for the same program
    (the paper's exactness/determinism property).

    ``metrics`` is the :meth:`repro.obs.MetricsRegistry.snapshot` of the
    run when an :class:`~repro.obs.Observability` with metrics enabled
    was attached, else ``None``.  Simulated-state metrics in it (channel
    traffic, peak occupancy, finish times, per-context ops) are
    executor-independent; scheduling metrics (parks, spin reads, wall
    clock) describe the real run and naturally vary.
    """

    elapsed_cycles: Time
    real_seconds: float
    context_times: dict[str, Time] = field(default_factory=dict)
    executor: str = ""
    policy: str = ""
    context_switches: int = 0
    wakeups: int = 0
    preemptions: int = 0
    ops_executed: int = 0
    #: Cold clusters claimed away from their planned worker (process
    #: executor work stealing); 0 for single-runtime executors.
    steals: int = 0
    #: Observed post-steal placement (process executor): context name →
    #: worker index where the context *actually* ran — planned owners
    #: overridden by recorded migrations.  Feed it back through
    #: :func:`~repro.core.executor.partition.pins_from_placement` so the
    #: next plan (and ``superblocks="auto"``) sees real locality instead
    #: of crediting a stolen cluster to its original owner.  ``None`` for
    #: single-runtime executors.
    placement: Optional[dict[str, int]] = None
    metrics: Optional[dict[str, Any]] = None
    #: The run's performance-attribution report
    #: (:meth:`repro.obs.profile.ProfileReport.to_dict`): critical path,
    #: blocked-time accounting, utilization epochs.  Attached when an
    #: :class:`~repro.obs.Observability` with tracing was on the run;
    #: derived from simulated state only, hence executor-independent.
    profile: Optional[dict[str, Any]] = None
    #: Retry-ladder history: one record per execution attempt when
    #: ``RunConfig(fallback=...)`` was set and at least one attempt failed
    #: with a host error (worker crash / deadline).  Each record carries
    #: ``executor``, ``outcome`` ("ok", "WorkerCrashError", ...), an
    #: ``error`` string for failures, ``seconds`` of wall clock spent,
    #: and the run's ``tag`` (below) so multiplexed logs stay attributable.
    attempts: list[dict[str, Any]] = field(default_factory=list)
    #: Opaque caller identity from ``RunConfig(tag=...)``, stamped by
    #: :meth:`Program.run` — never produced or interpreted by executors.
    #: The serve layer tags ``"tenant/request_id"`` so a summary pulled
    #: out of a log or metrics stream names the request that ran it.
    tag: Optional[str] = None

    # ------------------------------------------------------------------
    # Wire format (the serve layer streams summaries as JSON).
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-clean dict of the whole summary.

        ``metrics`` / ``profile`` / ``attempts`` are already plain dicts
        by construction (:meth:`MetricsRegistry.snapshot`,
        :meth:`ProfileReport.to_dict`); times are ints/floats.  The
        result round-trips exactly through :meth:`from_dict` — Python
        floats survive JSON bit-for-bit (shortest-round-trip repr).
        """
        return {
            "elapsed_cycles": self.elapsed_cycles,
            "real_seconds": self.real_seconds,
            "context_times": dict(self.context_times),
            "executor": self.executor,
            "policy": self.policy,
            "context_switches": self.context_switches,
            "wakeups": self.wakeups,
            "preemptions": self.preemptions,
            "ops_executed": self.ops_executed,
            "steals": self.steals,
            "placement": dict(self.placement) if self.placement else None,
            "metrics": self.metrics,
            "profile": self.profile,
            "attempts": list(self.attempts),
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunSummary":
        """Rebuild a summary from its :meth:`to_dict` form (client side)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown RunSummary field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(sorted(known))}"
            )
        return cls(**data)

    def __str__(self) -> str:
        return (
            f"RunSummary(cycles={self.elapsed_cycles}, "
            f"real={self.real_seconds:.4f}s, executor={self.executor}, "
            f"switches={self.context_switches}, ops={self.ops_executed})"
        )

    @classmethod
    def merge(
        cls,
        program: "Program",
        payloads,
        trace=None,
    ) -> "RunSummary":
        """Fold per-worker result payloads back onto ``program`` and
        return a partially-filled summary.

        Each payload is the dict a worker harvests after its slice of the
        run: ``finish_times`` / ``context_attrs`` / ``context_stats``
        keyed by context slot, ``channel_stats`` keyed by channel id,
        per-context ``trace`` event lists, and scheduler ``counters``.
        The caller (any multi-runtime executor) completes the summary
        with ``executor`` / ``policy`` / ``real_seconds`` / ``metrics``.

        Folding lives here so :mod:`~repro.core.executor.partitioned`
        and future distributed executors share one merge: finish times
        and picklable result attributes land on the original contexts,
        channel stats accumulate, trace buffers extend (keeping the
        ``(time, context, seq)`` merge executor-independent), and the
        post-run channel closures mirror what an in-process run leaves
        behind.
        """
        contexts = program.contexts
        by_id = {ch.id: ch for ch in program.channels}
        summary = cls(elapsed_cycles=0, real_seconds=0.0)

        for payload in payloads:
            for slot, finish in payload.get("finish_times", {}).items():
                ctx = contexts[slot]
                ctx.finish_time = finish
                ctx.time.finish()
            for slot, attrs in payload.get("context_attrs", {}).items():
                ctx = contexts[slot]
                for key, value in attrs.items():
                    setattr(ctx, key, value)
            for channel_id, shipped in payload.get("channel_stats", {}).items():
                channel = by_id.get(channel_id)
                if channel is None:  # pragma: no cover - defensive
                    continue
                stats = channel.stats
                stats.enqueues += shipped["enqueues"]
                stats.dequeues += shipped["dequeues"]
                stats.peeks += shipped["peeks"]
                if shipped["max_real_occupancy"] > stats.max_real_occupancy:
                    stats.max_real_occupancy = shipped["max_real_occupancy"]
                log = shipped.get("profile_log")
                if log and channel.profile_log is not None:
                    channel.profile_log.extend(log)
            if trace is not None:
                for name, events in payload.get("trace", {}).items():
                    buf = trace.buffer(name)
                    buf.events.extend(events)
                    buf._seq = len(buf.events)
            counters = payload.get("counters", {})
            summary.context_switches += counters.get("context_switches", 0)
            summary.wakeups += counters.get("wakeups", 0)
            summary.preemptions += counters.get("preemptions", 0)
            summary.ops_executed += counters.get("ops_executed", 0)
            summary.steals += counters.get("steals", 0)

        # Post-run channel parity with the in-process executors: every
        # finished endpoint has propagated its closure.
        for channel in program.channels:
            owner = channel.sender_owner
            if owner is not None and owner.finish_time is not None:
                channel.close_sender()
            owner = channel.receiver_owner
            if owner is not None and owner.finish_time is not None:
                channel.close_receiver()

        summary.elapsed_cycles = Executor._makespan(program)
        summary.context_times = {
            ctx.name: ctx.finish_time for ctx in program.contexts
        }
        return summary


class Executor:
    """Common interface: ``execute(program) -> RunSummary``."""

    name = "abstract"

    def execute(self, program: "Program") -> RunSummary:
        raise NotImplementedError

    @classmethod
    def from_config(cls, config=None, **overrides) -> "Executor":
        """Construct this executor from a :class:`RunConfig`.

        Only the config fields this executor's constructor declares are
        passed (see :meth:`RunConfig.kwargs_for`); ``overrides`` are
        applied on top of ``config`` first.
        """
        from .config import RunConfig

        if config is None:
            config = RunConfig()
        if overrides:
            config = config.replace(**overrides)
        return cls(**config.kwargs_for(cls))

    @staticmethod
    def _makespan(program: "Program") -> Time:
        """Largest finite finish time across contexts (0 if none)."""
        times = [
            ctx.finish_time
            for ctx in program.contexts
            if ctx.finish_time is not None
        ]
        return max(times, default=0)

    # ------------------------------------------------------------------
    # Shared observability hooks.
    # ------------------------------------------------------------------

    def _attach_profile(self, summary: RunSummary, program: "Program", obs) -> None:
        """Compute the performance-attribution report from the run's trace
        and attach it to both ``summary.profile`` and the obs bundle.

        A no-op without tracing.  The process executor's in-worker
        sequential executor overrides this to nothing — the parent
        profiles the merged run, exactly like metrics folding.
        """
        if obs is None or getattr(obs, "trace", None) is None:
            return
        trace = obs.trace
        if not trace.buffers():
            return
        from ...obs.profile import channel_meta_for, profile_trace

        meta = channel_meta_for(program.channels)
        obs.channel_meta = meta
        report = profile_trace(trace, channel_meta=meta)
        obs.profile_report = report
        summary.profile = report.to_dict()

    @staticmethod
    def _start_sampler(interval_s, probe, sink):
        """Start a live :class:`~repro.obs.stream.MetricsSampler` when an
        interval was configured; returns the sampler or ``None``."""
        if not interval_s:
            return None
        from ...obs.stream import MetricsSampler

        return MetricsSampler(interval_s, probe, sink=sink).start()

    @staticmethod
    def _stop_sampler(sampler, obs) -> None:
        """Stop ``sampler`` (taking a final sample) and publish the
        samples on the obs bundle when one is attached."""
        if sampler is None:
            return
        samples = sampler.stop()
        if obs is not None:
            obs.metrics_samples = samples
