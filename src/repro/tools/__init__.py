"""Developer tooling: code-size analysis for the Fig. 7 comparison."""

from .loc import count_loc, loc_comparison

__all__ = ["count_loc", "loc_comparison"]
