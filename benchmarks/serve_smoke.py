"""Serve smoke: a live server under concurrent mixed-graph load.

Starts a real :class:`SimServer`, fires 8 concurrent requests across two
graphs and three tenants, and asserts the service contract end to end:

* every served summary and result tensor is **bit-identical** to a
  direct in-process ``Program.run`` of the same spec;
* the repeated shapes hit the plan cache, visible on ``/metrics``;
* ``/metrics`` serves the full registry + subsystem snapshots as JSON;
* after shutdown, no worker processes and no ``/dev/shm`` segments leak
  (the chaos suite's post-condition, applied to the serve path).

Run:  PYTHONPATH=../src python serve_smoke.py
"""

import glob
import json
import multiprocessing
import sys
import threading

from repro.sam import CsfTensor
from repro.sam.spec import ProgramSpec
from repro.sam.tensor import random_dense
from repro.serve import ServeClient, ServeConfig, start_in_thread


def _spmspm_spec(seed):
    b = CsfTensor.from_dense(random_dense(6, 6, density=0.3, seed=seed), "cc")
    ct = CsfTensor.from_dense(
        random_dense(6, 6, density=0.3, seed=seed + 1), "cc"
    )
    return ProgramSpec.from_graph_inputs(
        "spmspm", {"b": b, "c_transposed": ct}, params={"depth": 4}
    )


def _mmadd_spec(seed):
    b = CsfTensor.from_dense(random_dense(6, 6, density=0.5, seed=seed), "cc")
    c = CsfTensor.from_dense(
        random_dense(6, 6, density=0.5, seed=seed + 1), "cc"
    )
    return ProgramSpec.from_graph_inputs(
        "mmadd", {"b": b, "c": c}, params={"depth": 3}
    )


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


def main() -> int:
    shm_before = _shm_segments()

    # Two graphs x two seeds, each requested twice = 8 requests with
    # guaranteed shape repeats for the plan cache.
    specs = []
    for seed in (23, 33):
        specs.append(_spmspm_spec(seed))
        specs.append(_mmadd_spec(seed + 50))
    specs = specs * 2
    tenants = ["alice", "bob", "ci"] * 3

    expected = []
    for spec in specs:
        built, summary = spec.run()
        expected.append(
            (summary.elapsed_cycles, built.result_dense().tobytes())
        )

    handle = start_in_thread(ServeConfig(max_concurrent=2, queue_limit=8))
    failures: list[str] = []
    try:
        client = ServeClient(handle.address)
        results: dict = {}
        barrier = threading.Barrier(len(specs))

        def submit(index):
            barrier.wait()
            results[index] = client.submit(
                specs[index], tenant=tenants[index], request_id=f"smoke-{index}"
            )

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(len(specs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)

        if len(results) != len(specs):
            failures.append(
                f"{len(specs) - len(results)} of {len(specs)} requests "
                "never completed"
            )
        for index, result in sorted(results.items()):
            cycles, payload = expected[index]
            if result.summary.elapsed_cycles != cycles:
                failures.append(
                    f"request {index}: served {result.summary.elapsed_cycles} "
                    f"cycles, local run gave {cycles}"
                )
            if result.result_dense().tobytes() != payload:
                failures.append(f"request {index}: result tensor diverged")

        metrics = client.metrics()
        json.dumps(metrics)
        counters = metrics["metrics"]["counters"]
        # Identical payloads coalesce onto one execution, so at most 4
        # distinct runs happen: one miss then one hit per graph shape.
        hits = metrics["plan_cache"]["hits"]
        if hits < 2:
            failures.append(
                f"expected >=2 plan-cache hits from repeated shapes, got {hits}"
            )
        if "plan_cache_hits" not in counters:
            failures.append("/metrics registry is missing plan_cache_hits")
        ok = sum(
            v for k, v in counters.items() if k.startswith("runs_ok")
        )
        if ok != len(specs):
            failures.append(f"runs_ok={ok}, expected {len(specs)}")
        print(
            f"served {len(results)} requests: "
            f"plan_cache hits={hits} misses={metrics['plan_cache']['misses']}, "
            f"tenants={sorted(metrics['tenants'])}"
        )
    finally:
        handle.stop()

    stray = multiprocessing.active_children()
    if stray:
        failures.append(f"leaked child processes: {stray}")
    leaked = _shm_segments() - shm_before
    if leaked:
        failures.append(f"leaked shm segments: {sorted(leaked)}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve smoke OK: 8 concurrent requests bit-identical, no leaks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
