"""Fig. 9 — MHA sweep across parallelization factors.

Paper: parallelization factors 1..64 (batch 8, heads 8); simulated
parallelism scales until real hardware saturates (~32 of 88 cores), with
context counts surpassing two thousand.

Reproduction, two series:

* **Simulated** speedup — the makespan reduction from splitting heads
  across independent pipelines.  Exactly reproducible anywhere.
* **Wall-clock** speedup — the process executor running the same graph
  partitioned across worker processes.  This is the paper's actual
  claim (real seconds falling as cores are added) and is only
  observable on a multi-core box; the sweep always *runs* and asserts
  bit-identical simulated results, but asserts improving wall time only
  when the container actually has the cores
  (``len(os.sched_getaffinity(0))``).

``python bench_fig9_mha_parallel.py --workers 2 --smoke`` runs a small
configuration once (the CI smoke path); the pytest entry points run the
full sweep and persist ``results/fig9_mha_parallel.txt`` plus the
machine-readable ``results/BENCH_fig9.json``.
"""

import argparse
import os
import platform
import subprocess
from pathlib import Path

import numpy as np
from conftest import report, report_json

from repro.bench import TextTable
from repro.core import RunConfig, plan_clusters
from repro.sam.graphs.mha import build_parallel_mha

HEADS = 8
SEQ_LEN = 10
HEAD_DIM = 4
FACTORS = [1, 2, 4, 8]
WORKER_COUNTS = [1, 2, 4]


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 - not a git checkout / git missing
        return "unknown"


def inputs(seed=0, heads=HEADS, seq_len=SEQ_LEN, head_dim=HEAD_DIM):
    rng = np.random.default_rng(seed)
    mask = (rng.random((heads, seq_len, seq_len)) < 0.4).astype(float)
    for h in range(heads):
        np.fill_diagonal(mask[h], 1.0)
    return (
        mask,
        rng.standard_normal((heads, seq_len, head_dim)),
        rng.standard_normal((heads, seq_len, head_dim)),
        rng.standard_normal((heads, seq_len, head_dim)),
    )


def run_sweep():
    """Simulated-parallelism series (sequential executor)."""
    mask, q, k, v = inputs()
    table = TextTable(
        ["parallelism", "sim_cycles", "sim_speedup", "contexts", "real_s"],
        title=(
            "Fig. 9 (scaled): MHA across parallelization factors\n"
            "paper: scales to ~32 on an 88-core box; >2000 contexts at 64"
        ),
    )
    base_cycles = None
    results = []
    reference = None
    for factor in FACTORS:
        parallel = build_parallel_mha(mask, q, k, v, parallelism=factor)
        summary = parallel.run()
        output = parallel.result_dense()
        if reference is None:
            reference = output
        else:
            assert np.allclose(output, reference)
        if base_cycles is None:
            base_cycles = summary.elapsed_cycles
        sim_speedup = base_cycles / summary.elapsed_cycles
        results.append((factor, summary.elapsed_cycles, sim_speedup))
        table.add_row(
            factor,
            summary.elapsed_cycles,
            sim_speedup,
            parallel.context_count,
            summary.real_seconds,
        )
    report("fig9_mha_parallel", table.render())
    return results


def run_worker_sweep(
    worker_counts=WORKER_COUNTS, parallelism=4, smoke=False, seed=0
):
    """Wall-clock series: the same graph on the process executor.

    Every process run must produce the sequential run's exact simulated
    results; wall seconds are what the workers are allowed to change.
    """
    if smoke:
        mask, q, k, v = inputs(seed=seed, heads=4, seq_len=6, head_dim=3)
    else:
        mask, q, k, v = inputs(seed=seed)

    baseline = build_parallel_mha(mask, q, k, v, parallelism=parallelism)
    base_summary = baseline.run()
    base_output = baseline.result_dense()
    sweep = {
        "cpu_count": available_cores(),
        "python": platform.python_version(),
        "git_rev": git_rev(),
        "parallelism": parallelism,
        "contexts": baseline.context_count,
        "sim_cycles": base_summary.elapsed_cycles,
        "sequential_s": base_summary.real_seconds,
        "workers": {},
    }
    for workers in worker_counts:
        kernel = build_parallel_mha(mask, q, k, v, parallelism=parallelism)
        summary = kernel.run(
            executor="process", config=RunConfig(workers=workers)
        )
        assert summary.elapsed_cycles == base_summary.elapsed_cycles, (
            f"process run (workers={workers}) changed simulated time: "
            f"{summary.elapsed_cycles} != {base_summary.elapsed_cycles}"
        )
        assert np.allclose(kernel.result_dense(), base_output)
        sweep["workers"][str(workers)] = {
            "wall_s": summary.real_seconds,
            "speedup": base_summary.real_seconds / summary.real_seconds,
            "sim_cycles": summary.elapsed_cycles,
            "steals": summary.steals,
        }
    sweep["steal"] = run_steal_sweep(
        parallelism=max(parallelism, 4), smoke=smoke, seed=seed
    )
    return sweep


def _skewed_pins(program):
    """Pin the first head-pipeline to worker 0 and every other pipeline
    to worker 1 — a deliberate 1-vs-many load skew."""
    clusters = plan_clusters(program, {id(ctx): 0 for ctx in program.contexts})
    first = set(clusters[0].contexts)
    return {
        id(ctx): (0 if slot in first else 1)
        for slot, ctx in enumerate(program.contexts)
    }


def run_steal_sweep(parallelism=4, smoke=False, seed=0):
    """Work-stealing series: a skewed 2-worker partition, steal off/on.

    With stealing off, worker 0 finishes its single pipeline and idles
    while worker 1 grinds through the rest; with stealing on, worker 0
    migrates cold pipelines over their shuttles and shared clocks.  Both
    runs must reproduce the sequential simulated results exactly.
    """
    if smoke:
        mask, q, k, v = inputs(seed=seed, heads=4, seq_len=6, head_dim=3)
        parallelism = min(parallelism, 4)
    else:
        mask, q, k, v = inputs(seed=seed)

    baseline = build_parallel_mha(mask, q, k, v, parallelism=parallelism)
    base_summary = baseline.run()
    base_output = baseline.result_dense()

    rows = {}
    for label, steal in [("static", False), ("steal", True)]:
        kernel = build_parallel_mha(mask, q, k, v, parallelism=parallelism)
        pins = _skewed_pins(kernel.program)
        summary = kernel.run(
            executor="process",
            config=RunConfig(workers=2, pins=pins, steal=steal),
        )
        assert summary.elapsed_cycles == base_summary.elapsed_cycles, (
            f"{label} run changed simulated time: "
            f"{summary.elapsed_cycles} != {base_summary.elapsed_cycles}"
        )
        assert np.allclose(kernel.result_dense(), base_output)
        rows[label] = summary
    assert rows["static"].steals == 0
    assert rows["steal"].steals >= 1, "skewed partition did not force a steal"
    return {
        "parallelism": parallelism,
        "static_wall_s": rows["static"].real_seconds,
        "steal_wall_s": rows["steal"].real_seconds,
        "speedup": rows["static"].real_seconds / rows["steal"].real_seconds,
        "steals": rows["steal"].steals,
    }


def render_worker_table(sweep) -> str:
    table = TextTable(
        ["workers", "wall_s", "speedup_vs_seq", "sim_cycles", "steals"],
        title=(
            "Fig. 9 (wall clock): process executor on "
            f"parallelism={sweep['parallelism']} MHA "
            f"({sweep['cpu_count']} cores visible)"
        ),
    )
    table.add_row("seq", sweep["sequential_s"], 1.0, sweep["sim_cycles"], 0)
    for workers, row in sorted(sweep["workers"].items(), key=lambda kv: int(kv[0])):
        table.add_row(
            workers, row["wall_s"], row["speedup"], row["sim_cycles"],
            row.get("steals", 0),
        )
    steal = sweep.get("steal")
    if steal:
        lines = [table.render()]
        lines.append(
            "work stealing (skewed 2-worker partition, "
            f"parallelism={steal['parallelism']}): "
            f"static {steal['static_wall_s']:.3f}s -> "
            f"steal {steal['steal_wall_s']:.3f}s "
            f"({steal['speedup']:.2f}x, {steal['steals']} steals)"
        )
        return "\n".join(lines)
    return table.render()


def test_fig9_simulated_parallelism_scales(benchmark):
    results = run_sweep()
    cycles = [c for _, c, _ in results]
    # Simulated makespan strictly improves with each doubling.
    assert all(later < earlier for earlier, later in zip(cycles, cycles[1:]))
    # And the full split achieves a substantial simulated speedup.
    assert results[-1][2] > 2.0
    mask, q, k, v = inputs()
    benchmark.pedantic(
        lambda: build_parallel_mha(mask, q, k, v, parallelism=4).run(),
        rounds=2,
        iterations=1,
    )


def test_fig9_process_executor_wall_clock():
    sweep = run_worker_sweep()
    report("fig9_mha_process", render_worker_table(sweep))
    report_json("BENCH_fig9", sweep)
    # Exactness is asserted unconditionally inside the sweep.  Wall-clock
    # improvement needs real cores: on a multi-core box the best worker
    # count must at least hold its own against sequential (the paper's
    # Fig. 9 shows clear wins; "no collapse" keeps CI boxes honest
    # without flaking on noisy neighbors).
    if sweep["cpu_count"] >= 2:
        best = max(row["speedup"] for row in sweep["workers"].values())
        assert best > 0.5, f"process executor collapsed: best speedup {best:.2f}"
        # On a skewed partition, letting the idle worker steal the cold
        # pipelines must beat strict placement (worker 0 would otherwise
        # idle through ~(p-1)/p of the work).
        assert sweep["steal"]["speedup"] > 1.0, (
            f"stealing did not improve wall clock: {sweep['steal']}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, nargs="*", default=None,
        help="worker counts to sweep (default: 1 2 4)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small configuration, no files written (CI smoke path)",
    )
    args = parser.parse_args()
    worker_counts = args.workers if args.workers else WORKER_COUNTS
    parallelism = 2 if args.smoke else 4
    sweep = run_worker_sweep(
        worker_counts=worker_counts, parallelism=parallelism, smoke=args.smoke
    )
    print(render_worker_table(sweep))
    if not args.smoke:
        report_json("BENCH_fig9", sweep)
    print("exactness: all process runs matched the sequential reference")


if __name__ == "__main__":
    main()
