"""Fig. 3 — DAM vs SST on reduction-tree forests.

Paper configuration: {2, 8, 32} binary reduction trees of depth {8, 10},
100000 reductions per tree, per-node work fib({16, 20}) (C++ via FFI),
imbalance +4 on the first tree; 88-core server; min speedup 1.93x (CFS) /
3.3x (SCHED_FIFO).

Scaled reproduction (single-core Python container; see EXPERIMENTS.md):
the wall-clock lever the paper exploits — OS threads across 88 cores —
does not exist here, so the reproducible shape is (a) DAM's runtime
overhead per unit of communication is lower than the event-queue
engine's (who wins sequentially), and (b) the event engine pays for
global ordering (events through a heap) plus, in parallel mode, a global
barrier per minimum-link-latency window, which DAM structurally avoids.
Measurements are interleaved min-of-3 to tame single-core timer noise.
"""

from conftest import report, report_json

from repro import Observability
from repro.bench import (
    TextTable,
    TreeConfig,
    run_dam_forest,
    run_eventsim_forest,
)

CONFIGS = [
    TreeConfig(trees=trees, depth=depth, reductions=20, fib_index=fib_index,
               imbalance=imbalance)
    for trees in (2, 4)
    for depth in (3, 4)
    for fib_index in (4, 10)
    for imbalance in (0, 4)
]

REPEATS = 3


def measure(config):
    """Interleaved min-of-REPEATS for both engines on one config."""
    sst_times, dam_times = [], []
    sst_result = dam_result = None
    for _ in range(REPEATS):
        sst_result = run_eventsim_forest(config, workers=1)
        dam_result = run_dam_forest(config, policy="fifo")
        sst_times.append(sst_result["real_seconds"])
        dam_times.append(dam_result["real_seconds"])
    expected = config.expected_root_sums()
    assert all(r == expected for r in dam_result["root_sums"])
    assert all(r == expected for r in sst_result["root_sums"])
    return min(sst_times), min(dam_times), sst_result, dam_result


def run_sweep():
    table = TextTable(
        ["config", "sst_s", "dam_s", "speedup", "sst_events", "dam_ops"],
        title=(
            "Fig. 3 (scaled, 1 core): DAM vs SST-style event-driven engine\n"
            "paper: min speedup 1.93x (CFS) / 3.3x (FIFO) on 88 cores"
        ),
    )
    speedups = []
    rows = []
    for config in CONFIGS:
        sst_s, dam_s, sst, dam = measure(config)
        speedup = sst_s / dam_s
        speedups.append((config, speedup))
        table.add_row(
            config.label(),
            sst_s,
            dam_s,
            speedup,
            sst["stats"].events_processed,
            dam["summary"].ops_executed,
        )
        rows.append(
            {
                "config": config.label(),
                "sst_seconds": sst_s,
                "dam_seconds": dam_s,
                "speedup": speedup,
                "sst_events": sst["stats"].events_processed,
                "dam_ops": dam["summary"].ops_executed,
            }
        )
    geomean = 1.0
    for _, s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    table.add_row("GEOMEAN", "", "", geomean, "", "")
    report("fig3_sst_vs_dam", table.render())
    # Machine-readable companion: the sweep rows plus the full metrics
    # registry snapshot (channel traffic, occupancy, per-context ops) of
    # one representative instrumented run.
    obs = Observability(trace=False)
    instrumented = run_dam_forest(CONFIGS[0], policy="fifo", obs=obs)
    report_json(
        "fig3_sst_vs_dam",
        {
            "rows": rows,
            "geomean_speedup": geomean,
            "instrumented_config": CONFIGS[0].label(),
            "metrics": instrumented["metrics"],
        },
    )
    return speedups, geomean


def test_fig3_sst_vs_dam(benchmark):
    speedups, geomean = run_sweep()
    # Single-core shape: DAM at least matches the event engine overall
    # (the paper's multicore advantage is out of scope here).
    assert geomean > 0.85
    # On framework-bound (light-work) configs DAM's lower per-op cost wins.
    light = [s for cfg, s in speedups if cfg.fib_index == 4]
    assert max(light) > 1.0
    config = TreeConfig(trees=2, depth=4, reductions=20, fib_index=4)
    benchmark.pedantic(
        lambda: run_dam_forest(config, policy="fifo"), rounds=3, iterations=1
    )


def test_fig3_barrier_cost_structure(benchmark):
    """The scaling-wall structure: the parallel event engine executes a
    global barrier per conservative window (bounded by the minimum link
    latency — here 1 cycle), while DAM has none."""
    config = TreeConfig(trees=2, depth=4, reductions=20, fib_index=4)
    from repro.eventsim import ParallelEngine
    from repro.bench.reduction_tree import build_eventsim_forest

    engine = ParallelEngine(workers=4)
    build_eventsim_forest(config, engine)
    stats = engine.run()
    table = TextTable(
        ["engine", "barriers", "events/ops"],
        title="Fig. 3 structure: global synchronization per run",
    )
    table.add_row("SST-style parallel (4 workers)", engine.barriers_executed,
                  stats.events_processed)
    dam = run_dam_forest(config, policy="fifo")
    table.add_row("DAM (no barriers, pairwise sync)", 0,
                  dam["summary"].ops_executed)
    report("fig3_barriers", table.render())
    # One barrier round per populated conservative window: with latency-1
    # links that is nearly one per simulated cycle with events in flight.
    assert engine.barriers_executed >= stats.final_time // 2
    benchmark.pedantic(
        lambda: run_eventsim_forest(config, workers=4), rounds=3, iterations=1
    )
