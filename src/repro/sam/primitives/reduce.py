"""Reduce: collapse the innermost fiber of a value stream.

``[v0, v1, S0, v2, S1, D]`` reduces to ``[v0 + v1, v2, S0, D]`` — one
payload per innermost fiber, all stop levels decremented by one.  Empty
fibers reduce to the identity (0.0 for add), which downstream crd-drop
stages may eliminate.
"""

from __future__ import annotations

from typing import Callable

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class Reduce(SamContext):
    """Streaming innermost-fiber reduction (default: sum)."""

    checkpoint_attrs = ("_token", "_acc", "_virgin")

    def __init__(
        self,
        in_val: Receiver,
        out_val: Sender,
        fn: Callable[[float, float], float] = lambda a, b: a + b,
        identity: float = 0.0,
        suppress_uninhabited: bool = False,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val = in_val
        self.out_val = out_val
        self.fn = fn
        self.identity = identity
        self.suppress_uninhabited = suppress_uninhabited
        self._token = UNSET
        self._acc = identity
        self._virgin = True
        self.register(in_val, out_val)

    def run(self):
        fn = self.fn
        # With ``suppress_uninhabited``: a higher-level stop arriving
        # before any payload or innermost (S0) boundary closes
        # *uninhabited* space (an empty operand) and emits no value.
        # Whether that reading is correct is graph knowledge: it holds
        # when the innermost level is dense (>= 1 payload per element, so
        # stream emptiness means no elements exist), and fails when empty
        # innermost fibers are legitimate per-element outcomes (e.g.
        # empty intersections in SpMSpM, which must still produce their
        # zero).  Hence the flag.  See tests/sam/test_primitives.py.
        deq = self.in_val.dequeue()
        enq_acc = self.out_val.enqueue(None)  # accumulator (or final DONE)
        enq_stop = self.out_val.enqueue(None)  # trailing shallower stop
        step = FusedOps(self.tick(), deq)
        flush_inner = FusedOps(enq_acc, self.tick_control(), deq)
        flush_outer = FusedOps(enq_acc, enq_stop, self.tick_control(), deq)
        flush_suppressed = FusedOps(enq_stop, self.tick_control(), deq)
        if self._token is UNSET:
            self._token = yield deq
        while True:
            token = self._token
            if token is DONE:
                enq_acc.data = DONE
                yield enq_acc
                return
            if token.__class__ is Stop:
                if token.level == 0:
                    enq_acc.data = self._acc
                    res = yield flush_inner
                    self._virgin = False
                    self._acc = self.identity
                    self._token = res[2]
                elif self.suppress_uninhabited and self._virgin:
                    enq_stop.data = Stop(token.level - 1)
                    res = yield flush_suppressed
                    self._acc = self.identity
                    self._token = res[2]
                else:
                    enq_acc.data = self._acc
                    enq_stop.data = Stop(token.level - 1)
                    res = yield flush_outer
                    self._acc = self.identity
                    self._token = res[3]
            else:
                res = yield step
                self._virgin = False
                self._acc = fn(self._acc, token)
                self._token = res[1]
