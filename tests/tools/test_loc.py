"""Tests for the Fig. 7 LoC accounting tool."""

from repro.tools import count_loc, loc_comparison


class TestCountLoc:
    def test_blank_and_comment_lines_excluded(self):
        source = "x = 1\n\n# comment\ny = 2\n"
        assert count_loc(source) == 2

    def test_docstrings_excluded(self):
        source = '"""Module docs\nspan lines."""\n\ndef f():\n    """f docs."""\n    return 1\n'
        assert count_loc(source) == 2  # def + return

    def test_syntax_error_falls_back_to_line_count(self):
        assert count_loc("not ( valid python\nx=1") == 2


class TestLocComparison:
    def test_has_all_primitives_and_total(self):
        rows = loc_comparison()
        names = [row["primitive"] for row in rows]
        assert "Repeat" in names
        assert names[-1] == "TOTAL"

    def test_counts_positive(self):
        for row in loc_comparison():
            assert row["dam_loc"] > 0
            assert row["legacy_loc"] > 0

    def test_stateful_primitives_shrink_on_dam(self):
        """The Fig. 7 effect: primitives with cross-cycle state (the
        scanner, repeat, reduce, spacc, crd-hold) are substantially
        smaller in CSPT style, where the generator's program counter
        replaces the hand-rolled state machine."""
        rows = {row["primitive"]: row for row in loc_comparison()}
        for name in ["FiberLookup", "Repeat", "Reduce", "SpaccV1", "CrdHold"]:
            assert rows[name]["dam_loc"] < rows[name]["legacy_loc"], name

    def test_total_reduction_positive(self):
        rows = loc_comparison()
        assert rows[-1]["reduction_pct"] > 0
