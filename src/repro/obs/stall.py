"""Stall reports: who is blocked, on which channel, at what time.

When a simulation deadlocks the most useful artifact is not a timeout
notice but the dependency cycle itself: every blocked context, the channel
operation it is parked on, and the *simulated* clocks of both endpoints of
that channel — the receiver stuck at t=5 waiting on a sender already at
t=12 tells you immediately which way the starvation flows.  Both executors
build a :class:`StallReport` on deadlock (the threaded watchdog dumps it
instead of its old bare timeout notice) and attach it to the active
:class:`~repro.obs.Observability` object when one is present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.time import INFINITY, Time

if TYPE_CHECKING:  # pragma: no cover
    from ..core.channel import Channel
    from ..core.context import Context


def _fmt_time(value: Time | None) -> str:
    if value is None:
        return "?"
    if value == INFINITY:
        return "inf"
    return str(value)


@dataclass(frozen=True)
class ContextStall:
    """One blocked context's state at deadlock."""

    context: str
    detail: str                    # e.g. "dequeue on empty scores"
    local_time: Time | None
    channel: str | None = None     # the blocking channel, when channel-blocked
    capacity: int | None = None    # None for unbounded
    occupancy: int | None = None   # physically queued elements right now
    peer: str | None = None        # context on the channel's other end
    peer_time: Time | None = None  # that peer's simulated clock

    @property
    def gap(self) -> Time | None:
        """Virtual-time gap between the two endpoint clocks
        (``peer_time - local_time``): positive means the peer is ahead
        (starvation flows toward us), negative means we outran the peer.
        ``None`` when either clock is unknown."""
        if self.local_time is None or self.peer_time is None:
            return None
        return self.peer_time - self.local_time

    def describe(self) -> str:
        line = f"{self.context}: {self.detail} @ t={_fmt_time(self.local_time)}"
        gap = self.gap
        gap_text = f", gap={_fmt_time(gap)}" if gap is not None else ""
        if self.channel is not None:
            cap = "inf" if self.capacity is None else str(self.capacity)
            line += (
                f" [channel {self.channel}: occupancy {self.occupancy}/{cap}"
            )
            if self.peer is not None:
                line += f", peer {self.peer} @ t={_fmt_time(self.peer_time)}{gap_text}"
            line += "]"
        elif self.peer is not None:
            line += f" [peer {self.peer} @ t={_fmt_time(self.peer_time)}{gap_text}]"
        return line


@dataclass
class StallReport:
    """The full deadlock diagnosis: one :class:`ContextStall` per blocked
    context, renderable as the lines of a :class:`DeadlockError`."""

    stalls: list[ContextStall]

    def lines(self) -> list[str]:
        """One line per stall, widest |clock gap| first (the biggest gap
        usually names the bottleneck); unknown gaps sort last, ties break
        by context name for determinism."""

        def key(stall: ContextStall) -> tuple:
            gap = stall.gap
            magnitude = abs(gap) if gap is not None else -1.0
            return (-magnitude, stall.context)

        return [stall.describe() for stall in sorted(self.stalls, key=key)]

    def for_context(self, name: str) -> ContextStall | None:
        for stall in self.stalls:
            if stall.context == name:
                return stall
        return None

    def __str__(self) -> str:
        header = f"stall report ({len(self.stalls)} blocked context(s)):"
        return "\n".join([header] + ["  " + line for line in self.lines()])

    def __len__(self) -> int:
        return len(self.stalls)


def stall_for(
    context: "Context",
    detail: str,
    channel: "Channel | None" = None,
    peer: "Context | None" = None,
) -> ContextStall:
    """Build one stall record, resolving the peer across ``channel``.

    ``peer`` overrides channel-derived resolution (used for WaitUntil,
    where the blocking dependency is a clock, not a channel).
    """
    if channel is not None and peer is None:
        if channel.receiver_owner is context:
            peer = channel.sender_owner
        else:
            peer = channel.receiver_owner
    return ContextStall(
        context=context.name,
        detail=detail,
        local_time=context.time.now(),
        channel=channel.name if channel is not None else None,
        capacity=channel.capacity if channel is not None else None,
        occupancy=channel.real_occupancy() if channel is not None else None,
        peer=peer.name if peer is not None else None,
        peer_time=peer.time.now() if peer is not None else None,
    )
