"""Register channels: cycle-granular FIFOs with end-of-cycle commit.

Writes performed during a cycle become visible at the *next* cycle (the
commit), modeling a registered hardware FIFO with single-cycle forwarding
latency.  Capacity counts committed plus pending elements, so a producer
observes backpressure in the same cycle it would in hardware.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any

_ids = itertools.count()


class CycleChannel:
    """A depth-limited FIFO committed at cycle boundaries."""

    __slots__ = ("id", "name", "capacity", "_data", "_pending", "pushes", "pops")

    def __init__(self, capacity: int | None = None, name: str | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.id = next(_ids)
        self.name = name or f"cyc_channel{self.id}"
        self.capacity = capacity
        self._data: deque[Any] = deque()
        self._pending: list[Any] = []
        self.pushes = 0
        self.pops = 0

    def can_push(self) -> bool:
        if self.capacity is None:
            return True
        return len(self._data) + len(self._pending) < self.capacity

    def push(self, value: Any) -> None:
        if not self.can_push():
            raise RuntimeError(f"{self.name}: push on full channel")
        self._pending.append(value)
        self.pushes += 1

    def can_pop(self) -> bool:
        return bool(self._data)

    def front(self) -> Any:
        return self._data[0]

    def pop(self) -> Any:
        self.pops += 1
        return self._data.popleft()

    def commit(self) -> None:
        """Make this cycle's writes visible (called by the engine)."""
        if self._pending:
            self._data.extend(self._pending)
            self._pending.clear()

    def idle(self) -> bool:
        return not self._data and not self._pending

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"CycleChannel({self.name}, len={len(self._data)})"
