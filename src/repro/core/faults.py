"""Deterministic fault injection for the executor stack.

A :class:`FaultPlan` describes *where* a run should fail — a worker process
killed at a trigger point, an exception raised inside a named context, a
shuttle lane that stops delivering records — so the chaos suite
(``tests/core/test_faults.py``) can prove that every failure mode surfaces
as the right typed error with no orphan processes and no leaked shared
memory.  Plans are seeded: a plan built with the same seed and the same
builder calls always injects the same faults at the same trigger points, so
chaos tests are reproducible, not flaky.

Executors accept a plan via ``RunConfig(faults=...)`` (or the ``faults=``
constructor argument).  Each executor honours the fault kinds that make
sense for it:

* ``kill_worker`` — process executor only.  The victim worker SIGKILLs
  itself once its operation counter reaches the trigger, which the parent's
  supervisor must surface as :class:`~repro.core.errors.WorkerCrashError`.
* ``raise_in`` — all executors.  A :class:`FaultInjected` exception is
  thrown into the named context's generator at its Nth operation and
  surfaces as :class:`~repro.core.errors.SimulationError` (deterministic,
  so the retry ladder must *not* retry it).
* ``stall_shuttle`` — process executor only.  The named channel's data lane
  delivers its first N records and then wedges, which must surface as
  :class:`~repro.core.errors.DeadlockError` via the parent watchdog (or
  :class:`~repro.core.errors.RunTimeoutError` when a deadline is set).

Worker-kill and shuttle-stall faults only exist on the process executor, so
a ladder fallback (``fallback="sequential"``) re-runs the program with those
faults inert — which is exactly what lets the chaos suite assert that the
retried run is bit-identical to a clean run.
"""

from __future__ import annotations

import random
import signal as _signal
from dataclasses import dataclass, replace
from typing import Any, Optional


class FaultInjected(RuntimeError):
    """The exception thrown into a context by a ``raise_in`` fault.

    Deliberately *not* a ``DamError``: it must look like an arbitrary user
    exception so it takes the normal ``SimulationError`` wrapping path.
    """


@dataclass(frozen=True)
class WorkerKill:
    """SIGKILL a worker at a trigger point.

    Two trigger kinds: ``after_ops`` fires once the worker's published
    operation counter reaches the threshold; ``after_checkpoints`` fires
    immediately after the worker has dumped its partition for the Nth
    checkpoint round — the worst possible moment for the parent's stitch,
    which is exactly what resume-from-checkpoint tests want to survive.
    Either trigger may be ``None`` (inert).

    ``worker=None`` means "pick a victim from the plan's seed" — resolved
    to a concrete index by :meth:`FaultPlan.resolve` once the worker count
    is known.
    """

    worker: Optional[int] = None
    after_ops: Optional[int] = 0
    signal: int = _signal.SIGKILL
    after_checkpoints: Optional[int] = None


@dataclass(frozen=True)
class ContextFault:
    """Throw :class:`FaultInjected` into ``context`` at its Nth operation."""

    context: str
    after_ops: int = 0
    message: str = "injected fault"

    def make(self) -> FaultInjected:
        return FaultInjected(
            f"fault injected into context {self.context!r} "
            f"after {self.after_ops} ops: {self.message}"
        )


@dataclass(frozen=True)
class ShuttleStall:
    """Wedge ``channel``'s data lane after delivering ``after_records``."""

    channel: str
    after_records: int = 0


class StalledLane:
    """Wraps a shuttle lane so ``try_pop`` dries up after N deliveries.

    Pushes pass through (the sender keeps making progress until the ring
    fills), but the receiving side sees at most ``after_records`` records
    and then a permanently empty lane — the observable behaviour of a
    wedged transport.  Everything else delegates to the wrapped lane.
    """

    def __init__(self, inner: Any, after_records: int):
        self._inner = inner
        self._left = after_records

    def try_push(self, obj: Any) -> bool:
        return self._inner.try_push(obj)

    def try_pop(self) -> tuple[bool, Any]:
        if self._left <= 0:
            return (False, None)
        ok, record = self._inner.try_pop()
        if ok:
            self._left -= 1
        return (ok, record)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class FaultPlan:
    """A seeded, deterministic schedule of injected failures.

    Build one fluently and hand it to ``RunConfig(faults=...)``::

        plan = FaultPlan(seed=7).kill_worker(after_ops=100)
        program.run(executor="process", config=RunConfig(workers=2, faults=plan))

    The plan is immutable once handed to an executor in the sense that
    executors never mutate it; it crosses the fork boundary by inheritance
    (and pickles cleanly for spawn-based contexts).
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.kills: list[WorkerKill] = []
        self.context_faults: dict[str, ContextFault] = {}
        self.stalls: list[ShuttleStall] = []

    # ------------------------------------------------------------------
    # Builders (fluent).
    # ------------------------------------------------------------------

    def kill_worker(
        self,
        worker: Optional[int] = None,
        after_ops: Optional[int] = None,
        signal: int = _signal.SIGKILL,
        after_checkpoints: Optional[int] = None,
    ) -> "FaultPlan":
        if after_ops is None and after_checkpoints is None:
            after_ops = 0  # bare kill_worker() keeps its old meaning
        self.kills.append(
            WorkerKill(worker, after_ops, signal, after_checkpoints)
        )
        return self

    def raise_in(
        self, context: str, after_ops: int = 0, message: str = "injected fault"
    ) -> "FaultPlan":
        self.context_faults[context] = ContextFault(context, after_ops, message)
        return self

    def stall_shuttle(self, channel: str, after_records: int = 0) -> "FaultPlan":
        self.stalls.append(ShuttleStall(channel, after_records))
        return self

    # ------------------------------------------------------------------
    # Executor-facing queries.
    # ------------------------------------------------------------------

    def resolve(self, total_workers: int) -> "FaultPlan":
        """Return a plan with every ``worker=None`` kill pinned to a
        concrete victim, chosen deterministically from the seed."""
        if not any(kill.worker is None for kill in self.kills):
            return self
        rng = random.Random(self.seed)
        resolved = FaultPlan(self.seed)
        resolved.context_faults = dict(self.context_faults)
        resolved.stalls = list(self.stalls)
        for kill in self.kills:
            if kill.worker is None:
                kill = replace(kill, worker=rng.randrange(max(total_workers, 1)))
            resolved.kills.append(kill)
        return resolved

    def kill_for(self, worker: int) -> Optional[WorkerKill]:
        """The kill aimed at ``worker``, if any (after :meth:`resolve`)."""
        for kill in self.kills:
            if kill.worker == worker:
                return kill
        return None

    def stall_for(self, channel: str) -> Optional[ShuttleStall]:
        for stall in self.stalls:
            if stall.channel == channel:
                return stall
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(seed={self.seed}, kills={self.kills}, "
            f"context_faults={sorted(self.context_faults)}, stalls={self.stalls})"
        )
