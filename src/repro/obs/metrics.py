"""A small dependency-free metrics registry: counters, gauges, histograms.

Executors and the bench harness fold their diagnostics into a
:class:`MetricsRegistry` — channel occupancy, park/unpark counts, SVA spin
reads, per-context ops and simulated time advanced, wall-clock per
context — giving every run one machine-readable metrics surface
(``RunSummary.metrics``) that benchmark trajectories can diff.

Metrics are identified by a name plus optional labels::

    registry.counter("parks", context="worker3").inc()
    registry.gauge("channel_max_occupancy", channel="scores").set_max(12)
    registry.histogram("context_wall_seconds").observe(0.03)

The write paths are designed for the executors' folding discipline:
per-context tallies are kept in executor-local storage (touched only by
one thread of control) and folded into the registry once, at run end, so
the registry itself needs no locking.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterator

_MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, Any]) -> _MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def format_key(key: _MetricKey) -> str:
    """Render ``("parks", (("context","a"),))`` as ``parks{context=a}``."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time value (last write wins; ``set_max`` keeps peaks)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Any = None

    def set(self, value: Any) -> None:
        self.value = value

    def set_max(self, value: Any) -> None:
        if self.value is None or value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


#: Log-linear quantile buckets: this many per octave (power of two).
_QUANTILE_SUBDIV = 4
#: Bucket index for values <= 0 (histograms observe durations, but a
#: zero-cost op is legal and must not blow up ``log2``).
_UNDERFLOW_BUCKET = -(2**31)


class Histogram:
    """Streaming summary statistics (count / min / max / mean / total)
    plus a log-linear bucket sketch backing :meth:`quantile`.

    The buckets are deterministic functions of the observed values (no
    sampling), so histograms over simulated quantities stay bit-identical
    across executors; ``summary()`` intentionally keeps its original
    bucket-free shape for ``RunSummary.metrics`` stability.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            bucket = _UNDERFLOW_BUCKET
        else:
            bucket = math.ceil(math.log2(value) * _QUANTILE_SUBDIV)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the bucket
        sketch; exact at the extremes (``q=0`` -> min, ``q=1`` -> max),
        within one log-linear bucket (~19%) elsewhere."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        if q == 0.0:
            return float(self.min)  # type: ignore[arg-type]
        if q == 1.0:
            return float(self.max)  # type: ignore[arg-type]
        rank = q * (self.count - 1)
        cumulative = 0
        for bucket in sorted(self._buckets):
            cumulative += self._buckets[bucket]
            if cumulative > rank:
                if bucket == _UNDERFLOW_BUCKET:
                    return float(self.min)  # type: ignore[arg-type]
                value = 2.0 ** (bucket / _QUANTILE_SUBDIV)
                # Clamp the bucket's representative into the observed range.
                return min(max(value, float(self.min)), float(self.max))  # type: ignore[arg-type]
        return float(self.max)  # type: ignore[arg-type]

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Creates-on-first-use registry of named, labelled metrics."""

    def __init__(self) -> None:
        self._counters: dict[_MetricKey, Counter] = {}
        self._gauges: dict[_MetricKey, Gauge] = {}
        self._histograms: dict[_MetricKey, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    # ------------------------------------------------------------------
    # Read side.
    # ------------------------------------------------------------------

    def counters(self) -> Iterator[tuple[str, int]]:
        for key in sorted(self._counters):
            yield format_key(key), self._counters[key].value

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of every metric, keyed ``name{label=value}``.

        This is what lands in ``RunSummary.metrics`` and in benchmark
        JSON files, so it must contain only JSON-serializable values.
        """
        return {
            "counters": {
                format_key(key): metric.value
                for key, metric in sorted(self._counters.items())
            },
            "gauges": {
                format_key(key): metric.value
                for key, metric in sorted(self._gauges.items())
            },
            "histograms": {
                format_key(key): metric.summary()
                for key, metric in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True, default=str)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Checkpoint round-trip (DESIGN.md §17).  snapshot() is lossy — it
    # flattens label tuples into display strings and reduces histograms
    # to their summaries — so checkpoints carry this raw form instead,
    # from which load_state() rebuilds every metric exactly (including
    # the quantile bucket sketches).
    # ------------------------------------------------------------------

    def dump_state(self) -> dict[str, Any]:
        """Full-fidelity state of every metric, as picklable plain data."""
        return {
            "counters": [
                (key, metric.value) for key, metric in sorted(self._counters.items())
            ],
            "gauges": [
                (key, metric.value) for key, metric in sorted(self._gauges.items())
            ],
            "histograms": [
                (
                    key,
                    {
                        "count": metric.count,
                        "total": metric.total,
                        "min": metric.min,
                        "max": metric.max,
                        "buckets": dict(metric._buckets),
                    },
                )
                for key, metric in sorted(self._histograms.items())
            ],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Replace this registry's contents with a :meth:`dump_state` dump."""

        def rekey(key) -> _MetricKey:
            name, labels = key
            return name, tuple(tuple(pair) for pair in labels)

        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        for key, value in state.get("counters", []):
            metric = Counter()
            metric.value = value
            self._counters[rekey(key)] = metric
        for key, value in state.get("gauges", []):
            metric = Gauge()
            metric.value = value
            self._gauges[rekey(key)] = metric
        for key, dumped in state.get("histograms", []):
            metric = Histogram()
            metric.count = dumped["count"]
            metric.total = dumped["total"]
            metric.min = dumped["min"]
            metric.max = dumped["max"]
            metric._buckets = dict(dumped["buckets"])
            self._histograms[rekey(key)] = metric


def fold_channel_metrics(registry: MetricsRegistry, channels) -> None:
    """Fold per-channel :class:`~repro.core.channel.ChannelStats` into the
    registry: traffic counters, the always-on peak real occupancy, and a
    cross-channel occupancy distribution."""
    occupancy_dist = registry.histogram("channel_max_occupancy_dist")
    for channel in channels:
        stats = channel.stats
        registry.counter("channel_enqueues", channel=channel.name).inc(stats.enqueues)
        registry.counter("channel_dequeues", channel=channel.name).inc(stats.dequeues)
        if stats.peeks:
            registry.counter("channel_peeks", channel=channel.name).inc(stats.peeks)
        registry.gauge("channel_max_occupancy", channel=channel.name).set_max(
            stats.max_real_occupancy
        )
        occupancy_dist.observe(stats.max_real_occupancy)


def fold_context_metrics(
    registry: MetricsRegistry,
    name: str,
    ops: int = 0,
    finish_time: Any = None,
    wall_seconds: float | None = None,
    parks: int = 0,
    spin_reads: int = 0,
) -> None:
    """Fold one context's executor-local tallies into the registry."""
    if ops:
        registry.counter("context_ops", context=name).inc(ops)
    if finish_time is not None:
        registry.gauge("context_finish_time", context=name).set(finish_time)
        registry.histogram("context_finish_time_dist").observe(finish_time)
    if wall_seconds is not None:
        registry.gauge("context_wall_seconds", context=name).set(wall_seconds)
        registry.histogram("context_wall_seconds_dist").observe(wall_seconds)
    if parks:
        registry.counter("context_parks", context=name).inc(parks)
    if spin_reads:
        registry.counter("context_spin_reads", context=name).inc(spin_reads)
