"""Exporter golden-file tests.

Exports derive from simulated state only, so they must be byte-identical
across runs, executors, and machines.  Regenerate the goldens with::

    REFRESH_OBS_GOLDENS=1 PYTHONPATH=src python -m pytest tests/obs/test_export.py
"""

import json
import os
from pathlib import Path

from repro import Observability, ProgramBuilder
from repro.contexts import Collector, RampSource, UnaryFunction

GOLDEN_DIR = Path(__file__).parent / "golden"


def traced_run(executor="sequential"):
    """A tiny, fully named pipeline (names keep goldens stable: unnamed
    contexts/channels would pick up global-counter ids)."""
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(2, name="raw")
    s2, r2 = builder.bounded(2, name="doubled")
    builder.add(RampSource(s1, 3, name="src"))
    builder.add(UnaryFunction(r1, s2, lambda x: 2 * x, name="double"))
    builder.add(Collector(r2, name="sink"))
    obs = Observability(capture_payloads=True, metrics=False)
    builder.build().run(executor=executor, obs=obs)
    return obs


def check_golden(name: str, rendered: str):
    golden = GOLDEN_DIR / name
    if os.environ.get("REFRESH_OBS_GOLDENS"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden.write_text(rendered)
    assert golden.exists(), f"golden file missing: {golden}"
    assert rendered == golden.read_text()


class TestCsvExport:
    def test_matches_golden(self):
        check_golden("tiny_pipeline.csv", traced_run().csv())

    def test_threaded_export_is_identical(self):
        assert traced_run("threaded").csv() == traced_run("sequential").csv()


class TestChromeTraceExport:
    def test_matches_golden(self):
        document = traced_run().chrome_trace()
        rendered = json.dumps(document, indent=2, sort_keys=True) + "\n"
        check_golden("tiny_pipeline.chrome.json", rendered)

    def test_is_valid_trace_event_json(self, tmp_path):
        path = traced_run().write_chrome_trace(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert event["ph"] in {"M", "X", "s", "f", "C"}
            assert "pid" in event
            if event["ph"] != "M":
                assert "ts" in event

    def test_utilization_counter_track_embedded(self):
        document = traced_run().chrome_trace()
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert counters, "profile runs must emit a utilization counter track"
        for event in counters:
            assert event["name"] == "utilization"
            assert set(event["args"]) == {"active", "blocked"}

    def test_profile_and_channel_meta_embedded(self):
        document = traced_run().chrome_trace()
        other = document["otherData"]
        profile = other["profile"]
        assert profile["critical_path"]["total"] == profile["finish_time"]
        assert set(other["channels"]) == {"raw", "doubled"}
        assert other["channels"]["raw"]["capacity"] == 2

    def test_one_track_per_context(self):
        document = traced_run().chrome_trace()
        thread_names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert thread_names == {"src", "double", "sink"}

    def test_channel_ops_are_slices(self):
        document = traced_run().chrome_trace()
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        channel_slices = [e for e in slices if e.get("cat") == "channel"]
        assert channel_slices
        for event in channel_slices:
            assert event["dur"] >= 0
            assert "channel" in event["args"]

    def test_transfers_become_flow_pairs(self):
        document = traced_run().chrome_trace()
        starts = [e for e in document["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in document["traceEvents"] if e["ph"] == "f"]
        # 3 transfers on each of the 2 channels.
        assert len(starts) == len(finishes) == 6
        assert {e["name"] for e in starts} == {"raw", "doubled"}
        by_id = {e["id"]: e for e in starts}
        for finish in finishes:
            start = by_id[finish["id"]]
            assert finish["ts"] >= start["ts"]

    def test_metrics_embedded_when_enabled(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2, name="only")
        builder.add(RampSource(snd, 2, name="src"))
        builder.add(Collector(rcv, name="sink"))
        obs = Observability(capture_payloads=True)
        builder.build().run(obs=obs)
        document = obs.chrome_trace()
        metrics = document["otherData"]["metrics"]
        assert metrics["counters"]["channel_enqueues{channel=only}"] == 2
