"""Unit tests for simulated time cells."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.time import INFINITY, TimeCell


class TestTimeCell:
    def test_starts_at_zero(self):
        assert TimeCell().now() == 0

    def test_starts_at_given_time(self):
        assert TimeCell(7).now() == 7

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            TimeCell(-1)

    def test_advance_moves_forward(self):
        cell = TimeCell()
        assert cell.advance(10) == 10
        assert cell.now() == 10

    def test_advance_to_past_is_noop(self):
        cell = TimeCell(10)
        assert cell.advance(3) == 10
        assert cell.now() == 10

    def test_advance_to_now_is_noop(self):
        cell = TimeCell(5)
        assert cell.advance(5) == 5

    def test_incr(self):
        cell = TimeCell(2)
        assert cell.incr(3) == 5

    def test_incr_zero_is_noop(self):
        cell = TimeCell(2)
        assert cell.incr(0) == 2

    def test_incr_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeCell().incr(-1)

    def test_finish_pins_at_infinity(self):
        cell = TimeCell(100)
        cell.finish()
        assert cell.now() == INFINITY
        assert cell.finished

    def test_not_finished_initially(self):
        assert not TimeCell().finished

    def test_infinity_compares_above_any_int(self):
        assert INFINITY > 10**30
        assert math.isinf(INFINITY)

    def test_on_advance_hook_fires_on_forward_motion(self):
        seen = []
        cell = TimeCell()
        cell.on_advance = seen.append
        cell.advance(4)
        cell.incr(2)
        cell.advance(1)  # no-op: already past
        assert seen == [4, 6]

    def test_on_advance_hook_fires_on_finish(self):
        seen = []
        cell = TimeCell()
        cell.on_advance = seen.append
        cell.finish()
        assert seen == [INFINITY]


@given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=50))
def test_time_is_monotonic_under_any_advance_sequence(targets):
    """Property: the clock never moves backwards."""
    cell = TimeCell()
    previous = 0
    for target in targets:
        now = cell.advance(target)
        assert now >= previous
        assert now == max(previous, target)
        previous = now


@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=1000)),
        max_size=50,
    )
)
def test_mixed_advance_incr_monotonic(steps):
    cell = TimeCell()
    previous = 0
    for is_incr, amount in steps:
        now = cell.incr(amount) if is_incr else cell.advance(amount)
        assert now >= previous
        previous = now
