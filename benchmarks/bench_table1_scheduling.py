"""Table I — FIFO vs CFS scheduling on the parallel sparse-MHA workload.

Paper configuration: multithreaded MHA, parallelization factor 32, on an
88-core instance; SCHED_FIFO beats CFS in every perf counter (2.3x
runtime) because the boosting fair scheduler lets each newly woken thread
preempt its waker, ping-ponging through oversaturated producer/consumer
chains.

Reproduction: the cooperative executor's scheduling policies model the
two disciplines directly (DESIGN.md substitution table).  The simulated
results are identical by construction; what Table I compares — context
switches, wakeups, preemptions, and runtime — comes from the policy.
"""

import numpy as np
from conftest import report

from repro.bench import TextTable
from repro.core import FairPolicy, SequentialExecutor
from repro.sam.graphs.mha import build_parallel_mha


def mha_workload(heads=4, seq_len=10, d=4, parallelism=4, seed=0):
    rng = np.random.default_rng(seed)
    mask = (rng.random((heads, seq_len, seq_len)) < 0.4).astype(float)
    for h in range(heads):
        np.fill_diagonal(mask[h], 1.0)
    q = rng.standard_normal((heads, seq_len, d))
    k = rng.standard_normal((heads, seq_len, d))
    v = rng.standard_normal((heads, seq_len, d))
    return build_parallel_mha(mask, q, k, v, parallelism=parallelism)


def run_policy(policy):
    mha = mha_workload()
    executor = SequentialExecutor(policy=policy)
    summary = executor.execute(mha.program)
    return summary


def test_table1_fifo_vs_cfs(benchmark):
    fifo = run_policy("fifo")
    cfs = run_policy(FairPolicy(timeslice=16, boost=True))

    table = TextTable(
        ["metric", "FIFO", "CFS-like", "fifo_advantage"],
        title=(
            "Table I (modeled scheduler): FIFO vs boosting-fair on parallel "
            "sparse MHA\npaper: FIFO better in every metric, 2.3x runtime"
        ),
    )
    table.add_row(
        "context switches",
        fifo.context_switches,
        cfs.context_switches,
        cfs.context_switches / max(fifo.context_switches, 1),
    )
    table.add_row(
        "wakeups", fifo.wakeups, cfs.wakeups,
        cfs.wakeups / max(fifo.wakeups, 1),
    )
    table.add_row(
        "preemptions", fifo.preemptions, cfs.preemptions,
        cfs.preemptions / max(fifo.preemptions, 1),
    )
    table.add_row(
        "real seconds", fifo.real_seconds, cfs.real_seconds,
        cfs.real_seconds / fifo.real_seconds,
    )
    table.add_row(
        "simulated cycles (identical)", fifo.elapsed_cycles,
        cfs.elapsed_cycles, 1.0,
    )
    report("table1_scheduling", table.render())

    # The Table I shape: FIFO strictly fewer switches; results unchanged.
    assert fifo.context_switches < cfs.context_switches
    assert fifo.preemptions <= cfs.preemptions
    assert fifo.elapsed_cycles == cfs.elapsed_cycles
    benchmark.pedantic(lambda: run_policy("fifo"), rounds=3, iterations=1)


def test_table1_cfs_timing(benchmark):
    benchmark.pedantic(
        lambda: run_policy(FairPolicy(timeslice=16, boost=True)),
        rounds=3,
        iterations=1,
    )
