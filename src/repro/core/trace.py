"""Simulation tracing: a per-operation event log for debugging and analysis.

A :class:`Tracer` attached to the sequential executor records one
:class:`TraceEvent` per completed operation — which context, what kind of
operation, on which channel, at what simulated time.  Traces answer the
questions that come up when a dataflow graph misbehaves ("who stalled
first?", "what did this unit see before the deadlock?") and provide the
per-stream timelines that calibration workflows compare against reference
traces.

Tracing costs one branch per operation when disabled and is therefore
off by default; it is supported on the sequential executor (the threaded
executor's interleaving would need per-event locking that would distort
the run being observed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from .time import Time


@dataclass(frozen=True)
class TraceEvent:
    """One completed operation."""

    context: str
    kind: str            # "enqueue" | "dequeue" | "peek" | "advance" | ...
    channel: str | None  # channel name for channel ops, else None
    time: Time           # the context's simulated time after the op
    payload: Any = None  # data moved, when applicable


class Tracer:
    """Collects trace events; filterable by context and channel.

    ``capture_payloads=False`` (default) keeps traces light; enable it to
    record the data values moved by channel operations.
    """

    def __init__(self, capture_payloads: bool = False):
        self.events: list[TraceEvent] = []
        self.capture_payloads = capture_payloads

    def record(
        self,
        context: str,
        kind: str,
        channel: str | None,
        time: Time,
        payload: Any = None,
    ) -> None:
        self.events.append(
            TraceEvent(
                context,
                kind,
                channel,
                time,
                payload if self.capture_payloads else None,
            )
        )

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def for_context(self, name: str) -> list[TraceEvent]:
        return [event for event in self.events if event.context == name]

    def for_channel(self, name: str) -> list[TraceEvent]:
        return [event for event in self.events if event.channel == name]

    def kinds(self, kind: str) -> Iterator[TraceEvent]:
        return (event for event in self.events if event.kind == kind)

    def completion_times(self, channel: str) -> list[Time]:
        """Dequeue times on a channel: the per-stream timeline that the
        calibration study matches against reference traces."""
        return [
            event.time
            for event in self.events
            if event.channel == channel and event.kind == "dequeue"
        ]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)
