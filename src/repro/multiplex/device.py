"""Physical devices: real, lock-guarded compute resources.

A :class:`PhysicalDevice` stands in for one GPU: it holds real task state
(weight matrices), charges a real cost for task stash/load (a memory
copy), and executes batches as real numpy matmuls — which release the GIL,
so multiple devices genuinely compute in parallel under the threaded
executor.

The :class:`DevicePool` implements the *unfair* acquisition the paper
recommends: a virtual device first retries the physical device it last
used (if it reacquires immediately, the loaded task is still resident and
the stash/load is skipped), and only then scans for any free device,
finally blocking on its preferred one.
"""

from __future__ import annotations

import threading
import time as _wallclock

import numpy as np


class PhysicalDevice:
    """One real compute resource with resident-task state."""

    def __init__(self, index: int, work_dim: int = 128, seed: int = 0):
        self.index = index
        self.work_dim = work_dim
        self.lock = threading.Lock()
        self.loaded_task: int | None = None
        self.loads = 0
        self.batches_run = 0
        rng = np.random.default_rng(seed + index)
        # The "HBM": resident weights for the currently loaded task.
        self._weights = rng.standard_normal((work_dim, work_dim))
        self._task_store: dict[int, np.ndarray] = {}

    def ensure_task(self, task_id: int) -> None:
        """Stash the resident task and load ``task_id`` (real copy cost).

        Caller must hold :attr:`lock`.
        """
        if self.loaded_task == task_id:
            return
        if self.loaded_task is not None:
            self._task_store[self.loaded_task] = self._weights.copy()
        if task_id in self._task_store:
            self._weights = self._task_store[task_id].copy()
        else:
            rng = np.random.default_rng(task_id)
            self._weights = rng.standard_normal((self.work_dim, self.work_dim))
        self.loaded_task = task_id
        self.loads += 1

    def run_batch(self, batch: np.ndarray, layers: int = 4) -> tuple[np.ndarray, float]:
        """Run the synthetic model on ``batch``; returns (output, seconds).

        Caller must hold :attr:`lock`.  The work is a small stack of
        matmuls + nonlinearity — real FLOPs whose duration is measured.
        """
        start = _wallclock.perf_counter()
        activations = batch
        for _ in range(layers):
            activations = np.tanh(activations @ self._weights)
        self.batches_run += 1
        return activations, _wallclock.perf_counter() - start


class DevicePool:
    """Unfair-preference allocation over a set of physical devices."""

    def __init__(self, devices: list[PhysicalDevice]):
        if not devices:
            raise ValueError("pool needs at least one device")
        self.devices = devices

    def acquire(self, preferred: int | None) -> PhysicalDevice:
        """Acquire some device's lock; prefer ``preferred``, never starve.

        Returns with the device's lock HELD; caller must release
        ``device.lock``.
        """
        if preferred is not None:
            device = self.devices[preferred % len(self.devices)]
            if device.lock.acquire(blocking=False):
                return device
        for device in self.devices:
            if device.lock.acquire(blocking=False):
                return device
        # Everything busy: block on the preferred (or first) device.
        device = self.devices[(preferred or 0) % len(self.devices)]
        device.lock.acquire()
        return device
