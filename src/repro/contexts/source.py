"""Source contexts: inject data into a dataflow graph."""

from __future__ import annotations

from typing import Any, Iterable

from ..core.channel import Sender
from ..core.context import Context
from ..core.ops import IncrCycles
from ..core.time import Time


class IterableSource(Context):
    """Emit every item of an iterable, one per initiation interval.

    ``initial_delay`` models fill latency before the first element; the
    initiation interval (``ii``) is the simulated cycles between issues.
    The iterable is materialized at construction time (resumable state
    must be indexable).
    """

    checkpoint_attrs = ("_index", "_phase", "_delayed")

    def __init__(
        self,
        out: Sender,
        items: Iterable[Any],
        ii: Time = 1,
        initial_delay: Time = 0,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.out = out
        self.items = list(items)
        self.ii = ii
        self.initial_delay = initial_delay
        self._index = 0
        self._phase = 0  # 0=emit, 1=tick
        self._delayed = False  # the initial_delay was charged
        self.register(out)

    def run(self):
        if self.initial_delay and not self._delayed:
            yield IncrCycles(self.initial_delay)
            self._delayed = True
        while self._index < len(self.items):
            if self._phase == 0:
                yield self.out.enqueue(self.items[self._index])
                self._phase = 1
            if self._phase == 1:
                yield IncrCycles(self.ii)
                self._phase = 0
                self._index += 1


class RampSource(Context):
    """Emit ``0, 1, ..., count - 1`` — a compact numeric source."""

    checkpoint_attrs = ("_value", "_phase")

    def __init__(self, out: Sender, count: int, ii: Time = 1, name: str | None = None):
        super().__init__(name=name)
        self.out = out
        self.count = count
        self.ii = ii
        self._value = 0
        self._phase = 0  # 0=emit, 1=tick
        self.register(out)

    def run(self):
        while self._value < self.count:
            if self._phase == 0:
                yield self.out.enqueue(self._value)
                self._phase = 1
            if self._phase == 1:
                yield IncrCycles(self.ii)
                self._phase = 0
                self._value += 1
