"""Contexts: the CSPT processes of a DAM program (paper Section III).

A context is a sequential process with a local clock.  Its behaviour is a
Python generator produced by :meth:`Context.run`: the generator yields
operation objects (:mod:`repro.core.ops`) and is resumed with their results.
Functionality and timing are described together — the body computes values
and sprinkles ``IncrCycles`` where the modeled hardware spends time.

Subclassing :class:`Context` is the general form; :class:`FunctionContext`
wraps a plain generator function for one-off processes.

Example — the paper's two-input merge unit (Listing 1), with a two-cycle
initiation interval and six-cycle latency::

    class Merge(Context):
        def __init__(self, a, b, out):
            super().__init__()
            self.a, self.b, self.out = a, b, out
            self.register(a, b, out)

        def run(self):
            while True:
                x = yield self.a.peek()
                y = yield self.b.peek()
                if x <= y:
                    yield self.a.dequeue()
                else:
                    yield self.b.dequeue()
                yield IncrCycles(2)                 # initiation interval
                yield self.out.enqueue(min(x, y))   # + channel latency
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable

from .channel import Receiver, Sender
from .errors import GraphConstructionError
from .ops import Op
from .time import TimeCell

#: The generator type a context body must produce.
ContextGenerator = Generator[Op, Any, None]

_context_ids = itertools.count()


class Context:
    """Base class for all simulated processes.

    Subclasses must:

    * call ``super().__init__()`` (optionally passing a ``name``),
    * call :meth:`register` with every channel handle they own, and
    * implement :meth:`run` as a generator yielding ops.

    The executor owns the context's lifecycle; user code never advances the
    clock directly (yield :class:`~repro.core.ops.IncrCycles` instead).
    """

    def __init__(self, name: str | None = None):
        self.id = next(_context_ids)
        self.name = name or f"{type(self).__name__}{self.id}"
        self.time = TimeCell(0)
        self.senders: list[Sender] = []
        self.receivers: list[Receiver] = []
        #: Final local time, recorded by the executor just before the clock
        #: is pinned at INFINITY.  None until the context finishes.
        self.finish_time: Any = None

    def register(self, *handles: Sender | Receiver) -> None:
        """Declare ownership of channel endpoints.

        Channels are statically connected: each endpoint belongs to exactly
        one context, checked here and again at program build time.
        """
        for handle in handles:
            if isinstance(handle, Sender):
                handle.attach(self)
                self.senders.append(handle)
            elif isinstance(handle, Receiver):
                handle.attach(self)
                self.receivers.append(handle)
            else:
                raise GraphConstructionError(
                    f"{self.name}: register() accepts Sender/Receiver "
                    f"handles, got {type(handle).__name__}"
                )

    def run(self) -> ContextGenerator:
        """Produce the generator that is this context's behaviour."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} @ {self.time.now()}>"


class FunctionContext(Context):
    """A context defined by a standalone generator function.

    ``body`` is called with no arguments (close over channels) or with the
    context itself when ``pass_context=True``.  Handles must still be
    registered, via the ``handles`` argument::

        snd, rcv = make_channel(capacity=4)

        def producer():
            for i in range(10):
                yield snd.enqueue(i)
                yield IncrCycles(1)

        ctx = FunctionContext(producer, handles=[snd])
    """

    def __init__(
        self,
        body: Callable[..., ContextGenerator],
        handles: Iterable[Sender | Receiver] = (),
        name: str | None = None,
        pass_context: bool = False,
    ):
        super().__init__(name=name or getattr(body, "__name__", None))
        self._body = body
        self._pass_context = pass_context
        self.register(*handles)

    def run(self) -> ContextGenerator:
        if self._pass_context:
            return self._body(self)
        return self._body()
