"""Tests for the cycle-by-cycle baseline engine."""

import pytest

from repro.cyclesim import (
    CycleBinaryOp,
    CycleChannel,
    CycleEngine,
    CycleSink,
    CycleSource,
    CycleUnaryOp,
)


class TestCycleChannel:
    def test_writes_visible_next_cycle(self):
        ch = CycleChannel(capacity=4)
        ch.push(1)
        assert not ch.can_pop()
        ch.commit()
        assert ch.can_pop()
        assert ch.pop() == 1

    def test_capacity_counts_pending(self):
        ch = CycleChannel(capacity=2)
        ch.push(1)
        ch.push(2)
        assert not ch.can_push()
        with pytest.raises(RuntimeError):
            ch.push(3)

    def test_fifo_order(self):
        ch = CycleChannel()
        for i in range(5):
            ch.push(i)
        ch.commit()
        assert [ch.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            CycleChannel(capacity=0)

    def test_idle(self):
        ch = CycleChannel()
        assert ch.idle()
        ch.push(1)
        assert not ch.idle()


class TestCycleEngine:
    def build_pipeline(self, items, ii=1):
        engine = CycleEngine()
        a = engine.channel(4)
        b = engine.channel(4)
        src = engine.add(CycleSource(a, items, ii=ii))
        op = engine.add(
            CycleUnaryOp(a, b, lambda x: x * 10, ii=ii, upstream=[src])
        )
        sink = engine.add(CycleSink(b, upstream=[op]))
        return engine, sink

    def test_pipeline_values(self):
        engine, sink = self.build_pipeline([1, 2, 3])
        engine.run()
        assert sink.values == [10, 20, 30]

    def test_empty_source(self):
        engine, sink = self.build_pipeline([])
        engine.run()
        assert sink.values == []

    def test_ii_slows_cycles(self):
        fast_engine, _ = self.build_pipeline(list(range(20)), ii=1)
        fast = fast_engine.run()
        slow_engine, _ = self.build_pipeline(list(range(20)), ii=3)
        slow = slow_engine.run()
        assert slow.cycles > fast.cycles

    def test_binary_op_alignment(self):
        engine = CycleEngine()
        a = engine.channel(4)
        b = engine.channel(4)
        c = engine.channel(4)
        s1 = engine.add(CycleSource(a, [1, 2, 3]))
        s2 = engine.add(CycleSource(b, [10, 20, 30]))
        op = engine.add(
            CycleBinaryOp(a, b, c, lambda x, y: x + y, upstream=[s1, s2])
        )
        sink = engine.add(CycleSink(c, upstream=[op]))
        engine.run()
        assert sink.values == [11, 22, 33]

    def test_ticks_scale_with_components_times_cycles(self):
        """The structural cost of cycle-by-cycle simulation: every live
        component ticks every cycle, busy or not."""
        engine, _ = self.build_pipeline(list(range(10)))
        stats = engine.run()
        assert stats.ticks >= stats.cycles  # >= 1 component alive per cycle

    def test_stall_detected(self):
        engine = CycleEngine(deadlock_window=2048)

        class Stuck(CycleSource):
            def tick(self, cycle):
                pass  # never produces, never finishes

        a = engine.channel(1)
        stuck = engine.add(Stuck(a, [1]))
        engine.add(CycleSink(a, upstream=[stuck]))
        with pytest.raises(RuntimeError, match="quiesced"):
            engine.run()

    def test_max_cycles_guard(self):
        engine = CycleEngine(max_cycles=100, deadlock_window=None)

        class Spinner(CycleSource):
            def tick(self, cycle):
                self.out.pushes += 1  # fake activity, never finish

        a = engine.channel(1)
        spinner = engine.add(Spinner(a, [1]))
        engine.add(CycleSink(a, upstream=[spinner]))
        with pytest.raises(RuntimeError, match="max_cycles"):
            engine.run()
