"""Legacy ALUs: cycle-based elementwise compute with head registers."""

from __future__ import annotations

from typing import Any, Callable

from ...cyclesim.channel import CycleChannel
from ...sam.token import DONE, Stop
from ..base import LegacySamPrimitive

_EMPTY = object()


class LegacyBinaryAlu(LegacySamPrimitive):
    """Combine two aligned value streams elementwise, one pair per cycle."""

    def __init__(
        self,
        in_val1: CycleChannel,
        in_val2: CycleChannel,
        out_val: CycleChannel,
        fn: Callable[[Any, Any], Any],
        name: str | None = None,
        ii: int = 1,
    ):
        super().__init__(name=name, ii=ii)
        self.in_val1 = in_val1
        self.in_val2 = in_val2
        self.out_val = out_val
        self.fn = fn
        self.head1: Any = _EMPTY
        self.head2: Any = _EMPTY

    def tick(self, cycle: int) -> None:
        if self.finished or self.stalled():
            return
        if self.head1 is _EMPTY and self.in_val1.can_pop():
            self.head1 = self.in_val1.pop()
        if self.head2 is _EMPTY and self.in_val2.can_pop():
            self.head2 = self.in_val2.pop()
        if self.head1 is _EMPTY or self.head2 is _EMPTY:
            return
        if not self.out_val.can_push():
            return
        a, b = self.head1, self.head2
        if a is DONE or b is DONE:
            if not (a is DONE and b is DONE):
                raise AssertionError(
                    f"{self.name}: value streams ended at different points"
                )
            self.out_val.push(DONE)
            self.finished = True
        elif isinstance(a, Stop) or isinstance(b, Stop):
            if a != b:
                raise AssertionError(
                    f"{self.name}: misaligned tokens {a!r} vs {b!r}"
                )
            self.out_val.push(a)
        else:
            self.out_val.push(self.fn(a, b))
        self.charge()
        self.head1 = _EMPTY
        self.head2 = _EMPTY


class LegacyUnaryAlu(LegacySamPrimitive):
    """Apply ``fn`` per payload; control tokens pass through."""

    def __init__(
        self,
        in_val: CycleChannel,
        out_val: CycleChannel,
        fn: Callable[[Any], Any],
        name: str | None = None,
        ii: int = 1,
    ):
        super().__init__(name=name, ii=ii)
        self.in_val = in_val
        self.out_val = out_val
        self.fn = fn

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self.stalled():
            return
        if not (self.in_val.can_pop() and self.out_val.can_push()):
            return
        token = self.in_val.pop()
        self.charge()
        if token is DONE:
            self.out_val.push(DONE)
            self.finished = True
        elif isinstance(token, Stop):
            self.out_val.push(token)
        else:
            self.out_val.push(self.fn(token))
