"""Tests for benchmark harness utilities and the Fig. 3 workload."""

import pytest

from repro.bench import (
    TextTable,
    TreeConfig,
    fib,
    run_dam_forest,
    run_eventsim_forest,
)


class TestFib:
    def test_values(self):
        assert [fib(n) for n in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"], title="T")
        table.add_row("a", 1)
        table.add_row("long-name", 2.5)
        rendered = table.render()
        assert "T" in rendered
        assert "long-name" in rendered
        lines = rendered.splitlines()
        assert len(lines) == 5  # title, header, rule, two rows

    def test_row_arity_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        assert TextTable._format(0.000123) == "0.000123"
        assert TextTable._format(1234.5) == "1.23e+03"
        assert TextTable._format(0) == "0"


class TestTreeConfig:
    def test_geometry(self):
        config = TreeConfig(trees=2, depth=3, reductions=5, fib_index=4)
        assert config.leaves_per_tree == 8
        assert config.nodes_per_tree == 7

    def test_imbalance_applies_to_first_tree_only(self):
        config = TreeConfig(
            trees=3, depth=2, reductions=1, fib_index=10, imbalance=4
        )
        assert config.fib_for_tree(0) == 14
        assert config.fib_for_tree(1) == 10

    def test_expected_root_sums(self):
        config = TreeConfig(trees=1, depth=2, reductions=3, fib_index=1)
        assert config.expected_root_sums() == [0, 4, 8]


class TestForests:
    def test_dam_forest_correct(self):
        config = TreeConfig(trees=2, depth=3, reductions=6, fib_index=3)
        result = run_dam_forest(config)
        expected = config.expected_root_sums()
        assert all(sums == expected for sums in result["root_sums"])

    def test_eventsim_matches_dam(self):
        config = TreeConfig(
            trees=1, depth=3, reductions=8, fib_index=2, imbalance=2
        )
        dam = run_dam_forest(config)
        event = run_eventsim_forest(config, workers=1)
        assert dam["root_sums"] == event["root_sums"]

    def test_dam_policies_agree_on_forest(self):
        config = TreeConfig(trees=1, depth=3, reductions=6, fib_index=2)
        fifo = run_dam_forest(config, policy="fifo")
        fair = run_dam_forest(config, policy="fair")
        assert fifo["root_sums"] == fair["root_sums"]
        assert fifo["cycles"] == fair["cycles"]

    def test_threaded_matches_sequential_on_forest(self):
        config = TreeConfig(trees=1, depth=2, reductions=5, fib_index=2)
        seq = run_dam_forest(config, executor="sequential")
        thr = run_dam_forest(config, executor="threaded")
        assert seq["root_sums"] == thr["root_sums"]
        assert seq["cycles"] == thr["cycles"]
