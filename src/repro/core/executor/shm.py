"""Shared-memory primitives for the process executor.

The process executor (:mod:`repro.core.executor.partitioned`) runs each
graph partition in a forked worker.  Everything the workers must share is
carved out of **one** ``multiprocessing.shared_memory`` block, the
:class:`SharedArena`, created by the parent before forking so every worker
inherits the same mapping:

* :class:`SharedClockArray` — one float64 slot per context.  A context's
  owning worker mirrors every local-clock advance into its slot
  (:class:`SharedTimeCell`); other workers read the slot optimistically
  (:class:`SharedTimeView`).  This keeps the paper's SVA mechanism a plain
  load across process boundaries: an 8-byte aligned read of a monotone
  value, never an overestimate.

* :class:`ShmRing` — a single-producer/single-consumer byte ring carrying
  pickled records.  Each *cut* channel (sender and receiver in different
  partitions) gets two rings — a data lane for ``(stamp, data)`` tuples
  and a response lane for dequeue times — bundled as a
  :class:`ChannelShuttle`.

* :class:`StatusBoard` — per-worker progress counters and run states, the
  inputs to the parent's global deadlock watchdog.

Memory-ordering note: every cross-process counter (ring head/tail, clock
slots, progress) is accessed through a ``memoryview.cast`` item, which
CPython implements as one aligned 8-byte ``memcpy`` — a single load/store
on x86-64.  (``struct.Struct("<Q").pack_into`` would NOT do: explicit
byte-order formats pack one byte at a time, and a torn tail read lets the
consumer run past the last published record.)  The rings are strictly
SPSC with the data written before the tail is published, so on
total-store-order hardware (the same assumption :mod:`repro.core.time`
documents for SVA) the consumer never observes a published record before
its bytes.  This mirrors the DAM-RS argument for x86 acquire/release
pairs.
"""

from __future__ import annotations

import pickle
import struct
from multiprocessing import shared_memory
from typing import Any

from ..time import INFINITY, Time, TimeCell

_U32 = struct.Struct("<I")

#: Byte overhead of one ring record (length prefix).
_RECORD_HEADER = 4

#: Ring header: producer tail (8 bytes) + consumer head (8 bytes).
RING_HEADER = 16

#: Bytes per worker on the status board: progress (8) + state (1), padded.
STATUS_SLOT = 16

#: Worker states published on the status board.
WORKER_RUNNING = 0
WORKER_BLOCKED = 1  # ready queue empty, waiting on remote activity
WORKER_DONE = 2


def _align8(value: int) -> int:
    return (value + 7) & ~7


class SharedArena:
    """One shared-memory block carved into aligned regions.

    The parent computes the total size, creates the arena, hands region
    views to the clock array / rings / status board, forks, and finally
    ``close()``s and ``unlink()``s it.  Workers inherit the mapping and
    never unlink.
    """

    def __init__(self, size: int):
        self.shm = shared_memory.SharedMemory(create=True, size=max(size, 8))
        self._views: list[memoryview] = []
        self._components: list[Any] = []

    def view(self, offset: int, length: int) -> memoryview:
        mv = memoryview(self.shm.buf)[offset : offset + length]
        self._views.append(mv)
        return mv

    def adopt(self, component: Any) -> Any:
        """Register a component whose ``release()`` must run before close
        (components hold derived views — casts and slices — that would
        otherwise keep the mapping pinned)."""
        self._components.append(component)
        return component

    def close(self) -> None:
        """Release carved views and unmap (each process for itself)."""
        for component in self._components:
            component.release()
        self._components.clear()
        for mv in self._views:
            mv.release()
        self._views.clear()
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a component kept a view
            pass

    def unlink(self) -> None:
        """Remove the backing segment (parent only, after the run)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ArenaLayout:
    """Accumulates aligned region reservations before the arena exists."""

    def __init__(self) -> None:
        self.size = 0

    def reserve(self, length: int) -> int:
        offset = self.size
        self.size = _align8(offset + length)
        return offset


# ----------------------------------------------------------------------
# Shared clocks.
# ----------------------------------------------------------------------


class SharedClockArray:
    """Float64 clock slots, one per context, in arena memory.

    Simulated times are integers well inside float64's exact range
    (2^53 cycles); :data:`~repro.core.time.INFINITY` maps to ``inf``.
    """

    def __init__(self, view: memoryview, slots: int):
        self._doubles = view.cast("d")
        self.slots = slots
        for index in range(slots):
            self._doubles[index] = 0.0

    def read(self, slot: int) -> float:
        return self._doubles[slot]

    def write(self, slot: int, value: float) -> None:
        self._doubles[slot] = value

    def release(self) -> None:
        self._doubles.release()

    @staticmethod
    def size_for(slots: int) -> int:
        return 8 * max(slots, 1)


class SharedTimeCell(TimeCell):
    """A :class:`TimeCell` that mirrors every advance into a shared slot.

    Installed (post-fork) on the contexts a worker *owns*: the worker's
    cooperative scheduler keeps mutating the local integer clock exactly
    as before, and peers in other processes read the float mirror — a
    lower bound by construction, since the mirror is written after the
    local value it reflects.
    """

    __slots__ = ("_clocks", "_slot")

    def __init__(self, clocks: SharedClockArray, slot: int, start: Time = 0):
        super().__init__(start)
        self._clocks = clocks
        self._slot = slot
        clocks.write(slot, float(start))

    def advance(self, target: Time) -> Time:
        if target > self._time:
            self._time = target
            self._clocks.write(self._slot, float(target))
            hook = self.on_advance
            if hook is not None:
                hook(target)
        return self._time

    def incr(self, cycles: Time) -> Time:
        if cycles < 0:
            raise ValueError(f"cannot step backwards in time by {cycles}")
        if cycles > 0:
            self._time += cycles
            self._clocks.write(self._slot, float(self._time))
            hook = self.on_advance
            if hook is not None:
                hook(self._time)
        return self._time

    def finish(self) -> None:
        self._time = INFINITY
        self._clocks.write(self._slot, INFINITY)
        hook = self.on_advance
        if hook is not None:
            hook(INFINITY)


class SharedTimeView:
    """Read-only view of a remote context's shared clock slot.

    Installed (post-fork) on the contexts a worker does *not* own, so
    ``ViewTime``/``WaitUntil`` ops and stall reports that touch
    ``ctx.time`` transparently read the owner's published clock.
    """

    __slots__ = ("_clocks", "_slot", "on_advance")

    def __init__(self, clocks: SharedClockArray, slot: int):
        self._clocks = clocks
        self._slot = slot
        self.on_advance = None

    def now(self) -> float:
        return self._clocks.read(self._slot)

    @property
    def finished(self) -> bool:
        return self._clocks.read(self._slot) == INFINITY

    def advance(self, target: Time) -> Time:  # pragma: no cover - guard
        raise RuntimeError("cannot advance a remote context's clock")

    def incr(self, cycles: Time) -> Time:  # pragma: no cover - guard
        raise RuntimeError("cannot advance a remote context's clock")

    def finish(self) -> None:  # pragma: no cover - guard
        raise RuntimeError("cannot finish a remote context's clock")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SharedTimeView({self.now()})"


# ----------------------------------------------------------------------
# Worker status board.
# ----------------------------------------------------------------------


class StatusBoard:
    """Per-worker progress counters and run states.

    Each worker owns one slot and publishes (a) a monotone progress
    counter bumped whenever it executes ops or moves shuttle records, and
    (b) its coarse state.  The parent's watchdog declares a global
    deadlock only when every live worker has been :data:`WORKER_BLOCKED`
    with an unchanged progress total for a full grace period — the
    cross-process analog of the threaded executor's all-parked heuristic.
    """

    def __init__(self, view: memoryview, workers: int):
        self._mv = view
        # Progress counters as whole-word items (atomic 8-byte stores);
        # slot layout: word 2*w = progress, byte 16*w+8 = state.
        self._words = view.cast("Q")
        self.workers = workers
        for index in range(workers):
            self._words[index * 2] = 0
            self._mv[index * STATUS_SLOT + 8] = WORKER_RUNNING

    def release(self) -> None:
        self._words.release()

    @staticmethod
    def size_for(workers: int) -> int:
        return STATUS_SLOT * max(workers, 1)

    def publish(self, worker: int, progress: int, state: int) -> None:
        self._words[worker * 2] = progress & (2**64 - 1)
        self._mv[worker * STATUS_SLOT + 8] = state

    def progress(self, worker: int) -> int:
        return self._words[worker * 2]

    def state(self, worker: int) -> int:
        return self._mv[worker * STATUS_SLOT + 8]

    def snapshot(self) -> tuple[int, list[int]]:
        """Total progress across workers plus each worker's state."""
        total = 0
        states = []
        for index in range(self.workers):
            total += self.progress(index)
            states.append(self.state(index))
        return total, states


# ----------------------------------------------------------------------
# Checkpoint coordination board.
# ----------------------------------------------------------------------


#: Commands the parent publishes on the checkpoint board.
CKPT_RUN = 0    # no round active: execute normally
CKPT_PAUSE = 1  # stop executing contexts; drain shuttles; publish counters
CKPT_DUMP = 2   # lanes are globally quiet: dump your partition slice


class CheckpointBoard:
    """Parent/worker rendezvous for quiescent-cut checkpoints.

    The parent owns the header — a monotone request epoch plus a command
    word — and each worker owns one row of counters:

    * ``ack`` — the epoch this worker last acknowledged (it has stopped
      executing contexts and entered its drain loop);
    * ``rounds`` — drain-loop iterations (monotone); the parent requires
      every worker to complete at least one full poll between its two
      quiescence sweeps;
    * ``moves`` — cumulative shuttle records moved while draining; any
      in-flight record shows up here as a delta between sweeps;
    * ``pending`` — records queued locally that have not fit in a lane
      yet; global quiescence requires zero everywhere;
    * ``dumped`` — the epoch whose partition dump this worker has
      written (tmp + rename) to the checkpoint directory.

    Word layout: ``[0]`` request epoch, ``[1]`` command, then five words
    per worker.  All fields are single aligned 8-byte items (see the
    module-level memory-ordering note).
    """

    _ROW = 5

    def __init__(self, view: memoryview, workers: int):
        self._words = view.cast("Q")
        self.workers = workers
        for index in range(2 + self._ROW * workers):
            self._words[index] = 0

    def release(self) -> None:
        self._words.release()

    @staticmethod
    def size_for(workers: int) -> int:
        return 8 * (2 + CheckpointBoard._ROW * max(workers, 1))

    # -- parent side ---------------------------------------------------

    def request(self, epoch: int, command: int) -> None:
        # Command first: a worker that reads the new epoch must never
        # see a stale DUMP from the previous round.
        self._words[1] = command
        self._words[0] = epoch

    def set_command(self, command: int) -> None:
        self._words[1] = command

    def row(self, worker: int) -> tuple[int, int, int, int, int]:
        base = 2 + self._ROW * worker
        words = self._words
        return (
            words[base], words[base + 1], words[base + 2],
            words[base + 3], words[base + 4],
        )

    # -- worker side ---------------------------------------------------

    def epoch(self) -> int:
        return self._words[0]

    def command(self) -> int:
        return self._words[1]

    def ack(self, worker: int, epoch: int) -> None:
        self._words[2 + self._ROW * worker] = epoch

    def publish_drain(
        self, worker: int, rounds: int, moves: int, pending: int
    ) -> None:
        base = 2 + self._ROW * worker
        self._words[base + 1] = rounds
        self._words[base + 2] = moves
        self._words[base + 3] = pending

    def mark_dumped(self, worker: int, epoch: int) -> None:
        self._words[2 + self._ROW * worker + 4] = epoch


# ----------------------------------------------------------------------
# Cluster claim board (work stealing).
# ----------------------------------------------------------------------


class ClaimBoard:
    """Claim words for the program's cold clusters.

    Work stealing migrates *cold* (never-started) clusters: a worker
    whose run queue drains claims its next own cold cluster, or — when
    it has none — steals another worker's.  The board holds one word per
    cluster (0 = cold, 1 = claimed, by whom) plus a cold-cluster count
    the parent watchdog reads: a run cannot be globally deadlocked while
    claimable work remains.

    All mutation happens under one inherited ``multiprocessing.Lock``
    (claims are rare — one per cluster per run — so contention is
    irrelevant); reads of ``cold_count`` outside the lock are monotone
    snapshots, safe for the fast "anything left?" check.

    Word layout: ``[0]`` cold count, then per cluster ``[1+2i]`` planned
    owner, ``[2+2i]`` claim state (0 cold / 1+claimant claimed).
    """

    def __init__(self, view: memoryview, clusters: int):
        self._words = view.cast("Q")
        self.clusters = clusters
        self._words[0] = clusters
        for index in range(clusters):
            self._words[1 + 2 * index] = 0
            self._words[2 + 2 * index] = 0

    def release(self) -> None:
        self._words.release()

    @staticmethod
    def size_for(clusters: int) -> int:
        return 8 * (1 + 2 * max(clusters, 1))

    def set_owner(self, cluster: int, worker: int) -> None:
        """Record the planned owner (parent, before forking)."""
        self._words[1 + 2 * cluster] = worker

    def owner(self, cluster: int) -> int:
        return self._words[1 + 2 * cluster]

    def cold_count(self) -> int:
        return self._words[0]

    def is_cold(self, cluster: int) -> bool:
        return self._words[2 + 2 * cluster] == 0

    def claimant(self, cluster: int) -> int:
        """Who claimed the cluster (-1 while cold)."""
        word = self._words[2 + 2 * cluster]
        return int(word) - 1 if word else -1

    def claim(self, cluster: int, worker: int) -> None:
        """Mark ``cluster`` claimed by ``worker`` (call under the lock)."""
        self._words[2 + 2 * cluster] = 1 + worker
        self._words[0] -= 1


# ----------------------------------------------------------------------
# SPSC ring.
# ----------------------------------------------------------------------


class RecordTooLarge(ValueError):
    """A single pickled record exceeds the ring's capacity."""

    def __init__(self, need: int, capacity: int):
        super().__init__(
            f"shuttle record of {need} bytes exceeds ring capacity "
            f"{capacity}; raise ProcessExecutor(ring_capacity=...) or use "
            "shuttle='pipe'"
        )


class ShmRing:
    """Single-producer / single-consumer pickled-record ring.

    Monotone 64-bit head/tail counters live in the first 16 bytes of the
    region, published as single aligned 8-byte stores (see the module
    docstring's memory-ordering note); records are a 4-byte length prefix
    plus the pickle, wrapping byte-wise.  Exactly one process pushes and
    exactly one pops (a cut channel has one sending and one receiving
    partition), so no locks are needed — the tail publish *after* the
    data write is the only ordering requirement.
    """

    __slots__ = ("_mv", "_counters", "_data", "capacity", "_tail", "_head")

    def __init__(self, view: memoryview, capacity: int):
        self._mv = view
        self._counters = view[:RING_HEADER].cast("Q")  # [0]=tail, [1]=head
        self._data = view[RING_HEADER:]
        self.capacity = capacity
        self._counters[0] = 0
        self._counters[1] = 0
        # Endpoint-local cached counters (each side caches its own).
        self._tail = 0
        self._head = 0

    def release(self) -> None:
        self._counters.release()
        self._data.release()

    @staticmethod
    def size_for(capacity: int) -> int:
        return RING_HEADER + capacity

    # -- producer side -------------------------------------------------

    def try_push(self, obj: Any) -> bool:
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        need = _RECORD_HEADER + len(blob)
        if need > self.capacity:
            raise RecordTooLarge(need, self.capacity)
        tail = self._tail
        head = self._counters[1]
        if self.capacity - (tail - head) < need:
            return False
        self._write_bytes(tail % self.capacity, _U32.pack(len(blob)))
        self._write_bytes((tail + _RECORD_HEADER) % self.capacity, blob)
        self._tail = tail + need
        self._counters[0] = self._tail
        return True

    # -- consumer side -------------------------------------------------

    def try_pop(self) -> tuple[bool, Any]:
        head = self._head
        tail = self._counters[0]
        if tail == head:
            return False, None
        length = _U32.unpack(self._read_bytes(head % self.capacity, _RECORD_HEADER))[0]
        blob = self._read_bytes((head + _RECORD_HEADER) % self.capacity, length)
        obj = pickle.loads(blob)
        self._head = head + _RECORD_HEADER + length
        self._counters[1] = self._head
        return True, obj

    # -- byte helpers (wraparound copies) ------------------------------

    def _write_bytes(self, pos: int, payload: bytes) -> None:
        first = min(len(payload), self.capacity - pos)
        self._data[pos : pos + first] = payload[:first]
        if first < len(payload):
            self._data[0 : len(payload) - first] = payload[first:]

    def _read_bytes(self, pos: int, length: int) -> bytes:
        first = min(length, self.capacity - pos)
        if first == length:
            return bytes(self._data[pos : pos + length])
        return bytes(self._data[pos : pos + first]) + bytes(
            self._data[0 : length - first]
        )


class PipeLane:
    """``multiprocessing.Pipe``-backed lane with the same try-push/pop
    surface as :class:`ShmRing` — the fallback when arbitrary record
    sizes must flow (or shared memory is unavailable).

    ``try_push`` may block briefly once the OS pipe buffer fills; the
    receiving worker drains its lanes unconditionally into local mirrors,
    so sustained blocking only happens if the peer died (and the parent's
    cleanup terminates stragglers).
    """

    __slots__ = ("_recv", "_send")

    def __init__(self, mp_context):
        self._recv, self._send = mp_context.Pipe(duplex=False)

    def try_push(self, obj: Any) -> bool:
        try:
            self._send.send(obj)
        except (BrokenPipeError, OSError):
            # The receiving worker died.  Swallow the record (dead
            # letters): the parent's crash supervisor is about to abort
            # the run, and a sender wedged in an unhandled BrokenPipeError
            # would be misreported as its own failure.
            return True
        return True

    def try_pop(self) -> tuple[bool, Any]:
        try:
            if self._recv.poll():
                return True, self._recv.recv()
        except (EOFError, BrokenPipeError, OSError):
            pass  # peer died mid-record; supervision handles the abort
        return False, None


# ----------------------------------------------------------------------
# Shuttles: the two lanes of one cut channel.
# ----------------------------------------------------------------------

#: Record tags carried on shuttle lanes.
DATA = "d"          # data lane: (DATA, stamp, payload)
SENDER_DONE = "c"   # data lane: sender finished (channel closes)
RESPONSE = "r"      # response lane: (RESPONSE, release_time)
RECEIVER_DONE = "f"  # response lane: receiver finished (channel voids)


class ChannelShuttle:
    """The cross-process bridge for one cut channel.

    ``data`` flows sender-partition → receiver-partition carrying the
    exact ``(stamp, data)`` tuples an in-process channel would queue;
    ``resp`` flows back carrying the dequeue-time responses that drive
    backpressure.  Both lanes preserve FIFO order, so every simulated
    state transition sees the same sequence it would in-process — the
    schedule-independence property the equivalence suite asserts.
    """

    __slots__ = ("channel_id", "data", "resp")

    def __init__(self, channel_id: int, data_lane, resp_lane):
        self.channel_id = channel_id
        self.data = data_lane
        self.resp = resp_lane
