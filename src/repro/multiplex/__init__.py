"""Case study: time-multiplexed simulation of real resources (Sec. IX).

CSPT plus asynchronous distributed time allows *real* resources to be
time-multiplexed among simulated ("virtual") copies: a virtual device
locks a physical device, stashes/loads the task if the device last ran a
different one, executes the real work while peers run elsewhere, and
advances its own simulated clock from a performance estimate.

The paper multiplexes physical NVIDIA T4 GPUs under PyTorch; here the
physical device is a lock-guarded numpy compute resource (matmuls release
the GIL, so contention between device threads is real — the documented
substitution in DESIGN.md).  The latency-sensitive batching model of
Section IX-A is included: a batching context that runs arbitrarily far
ahead in simulated time, passing precise (launch time, batch size) records
to an inference context that lags behind.
"""

from .batching import BatchingContext, InferenceContext, poisson_arrivals
from .device import DevicePool, PhysicalDevice
from .experiment import MultiplexResult, run_multiplex_experiment
from .virtual import VirtualDevice

__all__ = [
    "PhysicalDevice",
    "DevicePool",
    "VirtualDevice",
    "BatchingContext",
    "InferenceContext",
    "poisson_arrivals",
    "run_multiplex_experiment",
    "MultiplexResult",
]
