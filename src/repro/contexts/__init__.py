"""Reusable context library.

Generic building blocks used throughout the case studies and benchmarks:
iterable-driven sources, collecting sinks, unary/binary function units with
configurable initiation interval and latency, the paper's merge unit
(Listing 1), broadcasters, and reduction-tree nodes (the Fig. 3 workload).
"""

from .broadcast import Broadcast
from .function import BinaryFunction, UnaryFunction
from .merge import Merge
from .reduce import ReduceNode, StreamReducer
from .sink import Checker, Collector, NullSink
from .source import IterableSource, RampSource

__all__ = [
    "Broadcast",
    "UnaryFunction",
    "BinaryFunction",
    "Merge",
    "ReduceNode",
    "StreamReducer",
    "Collector",
    "Checker",
    "NullSink",
    "IterableSource",
    "RampSource",
]
