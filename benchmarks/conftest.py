"""Shared benchmark infrastructure.

Every benchmark regenerates one paper table/figure: it runs the (scaled)
sweep, prints the paper-shaped rows, and persists them under
``benchmarks/results/`` so the output survives pytest's capture.  The
``benchmark`` fixture additionally times one representative configuration
so ``pytest benchmarks/ --benchmark-only`` produces comparable timings.

Besides the human-readable tables, benchmarks emit machine-readable
metrics via :func:`report_json` (typically an
:class:`repro.obs.MetricsRegistry` snapshot plus the sweep rows), giving
``BENCH_*.json``-style trajectories a stable surface to diff across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def report_json(name: str, payload: Any) -> Path:
    """Persist a machine-readable result under benchmarks/results/.

    ``payload`` must be JSON-serializable (non-serializable leaves fall
    back to ``str``, so simulated-time ``inf`` values survive).  Returns
    the written path.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path
