"""Threaded-executor-specific behaviour: watchdog, error propagation."""

import pytest

from repro import (
    Context,
    DeadlockError,
    IncrCycles,
    ProgramBuilder,
    SimulationError,
    ThreadedExecutor,
)
from repro.contexts import Collector, RampSource


class Exploder(Context):
    def __init__(self, inp):
        super().__init__(name="exploder")
        self.inp = inp
        self.register(inp)

    def run(self):
        yield self.inp.dequeue()
        raise RuntimeError("boom")


class TestThreadedErrors:
    def test_context_exception_propagates(self):
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(2)
        builder.add(RampSource(snd, 5))
        builder.add(Exploder(rcv))
        with pytest.raises(SimulationError, match="boom"):
            ThreadedExecutor().execute(builder.build())

    def test_peer_contexts_unwound_after_failure(self):
        """A failing context must not hang its peers: the abort flag
        reaches parked threads through their bounded waits."""
        builder = ProgramBuilder()
        snd, rcv = builder.bounded(1)
        source = builder.add(RampSource(snd, 10_000))
        builder.add(Exploder(rcv))
        with pytest.raises(SimulationError):
            ThreadedExecutor(poll_interval=0.01).execute(builder.build())
        # The source did not complete its stream (it was aborted).
        assert source.finish_time is None or source.finish_time < 10_000

    def test_watchdog_reports_blocked_details(self):
        class Starved(Context):
            def __init__(self, inp):
                super().__init__(name="starved")
                self.inp = inp
                self.register(inp)

            def run(self):
                yield self.inp.dequeue()

        class NeverSends(Context):
            def __init__(self, out, inp):
                super().__init__(name="never")
                self.out = out
                self.inp = inp
                self.register(out, inp)

            def run(self):
                yield self.inp.dequeue()  # waits forever
                yield self.out.enqueue(1)

        builder = ProgramBuilder()
        s1, r1 = builder.bounded(1)
        s2, r2 = builder.bounded(1)
        builder.add(Starved(r1))
        builder.add(NeverSends(s1, r2))
        # r2 has no sender... wire it circularly instead:
        with pytest.raises(Exception):
            builder.build()

    def test_watchdog_detects_cycle(self):
        class Hold(Context):
            def __init__(self, inp, out, name):
                super().__init__(name=name)
                self.inp, self.out = inp, out
                self.register(inp, out)

            def run(self):
                value = yield self.inp.dequeue()
                yield self.out.enqueue(value)

        builder = ProgramBuilder()
        s1, r1 = builder.bounded(1)
        s2, r2 = builder.bounded(1)
        builder.add(Hold(r1, s2, "h1"))
        builder.add(Hold(r2, s1, "h2"))
        with pytest.raises(DeadlockError) as excinfo:
            ThreadedExecutor(
                poll_interval=0.01, deadlock_grace=0.3
            ).execute(builder.build())
        assert "h1" in str(excinfo.value)
        assert "h2" in str(excinfo.value)

    def test_compute_heavy_context_not_misdiagnosed(self):
        """A context that computes without yielding for a while must not
        trip the watchdog (not all threads are parked)."""

        class Cruncher(Context):
            def __init__(self, out):
                super().__init__(name="cruncher")
                self.out = out
                self.register(out)

            def run(self):
                total = 0
                for i in range(600_000):  # ~long pure-Python stretch
                    total += i
                yield self.out.enqueue(total)
                yield IncrCycles(1)

        builder = ProgramBuilder()
        snd, rcv = builder.bounded(1)
        builder.add(Cruncher(snd))
        sink = builder.add(Collector(rcv))
        ThreadedExecutor(
            poll_interval=0.01, deadlock_grace=0.05
        ).execute(builder.build())
        assert sink.values == [sum(range(600_000))]
