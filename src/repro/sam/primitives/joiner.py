"""Coordinate joiners: Intersect (multiplication) and Union (addition).

Both consume two aligned (crd, ref) stream pairs whose control structure
matches (they scan the same logical iteration space), and produce one crd
stream plus a ref stream per input operand.

* **Intersect** keeps only coordinates present on both sides — the sparse
  iteration space of a multiply.
* **Union** keeps coordinates present on either side, emitting ``ABSENT``
  for the missing operand's reference — the iteration space of an add.
  Downstream, :class:`~repro.sam.primitives.fiber_lookup.FiberLookup`
  treats ``ABSENT`` as an empty fiber and
  :class:`~repro.sam.primitives.array.ArrayVals` reads it as 0.0.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ..token import ABSENT, DONE, Stop
from .base import SamContext, TimingParams


class _TwoStreamJoiner(SamContext):
    """Shared plumbing: paired (crd, ref) heads with lookahead."""

    def __init__(
        self,
        in_crd1: Receiver,
        in_ref1: Receiver,
        in_crd2: Receiver,
        in_ref2: Receiver,
        out_crd: Sender,
        out_ref1: Sender,
        out_ref2: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_crd1 = in_crd1
        self.in_ref1 = in_ref1
        self.in_crd2 = in_crd2
        self.in_ref2 = in_ref2
        self.out_crd = out_crd
        self.out_ref1 = out_ref1
        self.out_ref2 = out_ref2
        self.register(
            in_crd1, in_ref1, in_crd2, in_ref2, out_crd, out_ref1, out_ref2
        )

    def _pull1(self):
        crd = yield self.in_crd1.dequeue()
        ref = yield self.in_ref1.dequeue()
        return crd, ref

    def _pull2(self):
        crd = yield self.in_crd2.dequeue()
        ref = yield self.in_ref2.dequeue()
        return crd, ref

    def _emit(self, crd, ref1, ref2):
        yield self.out_crd.enqueue(crd)
        yield self.out_ref1.enqueue(ref1)
        yield self.out_ref2.enqueue(ref2)

    def _emit_control(self, token):
        yield self.out_crd.enqueue(token)
        yield self.out_ref1.enqueue(token)
        yield self.out_ref2.enqueue(token)


class Intersect(_TwoStreamJoiner):
    """Two-pointer fiber intersection (sparse multiply iteration space)."""

    def run(self):
        c1, r1 = yield from self._pull1()
        c2, r2 = yield from self._pull2()
        while True:
            s1 = isinstance(c1, Stop)
            s2 = isinstance(c2, Stop)
            if c1 is DONE or c2 is DONE:
                assert c1 is DONE and c2 is DONE, (
                    f"{self.name}: streams ended at different points "
                    f"({c1!r} vs {c2!r})"
                )
                yield from self._emit_control(DONE)
                return
            if s1 and s2:
                assert c1.level == c2.level, (
                    f"{self.name}: misaligned stops {c1!r} vs {c2!r}"
                )
                yield from self._emit_control(c1)
                yield self.tick_control()
                c1, r1 = yield from self._pull1()
                c2, r2 = yield from self._pull2()
            elif s1:
                # Side 2 still has coordinates this fiber: no match possible.
                yield self.tick()
                c2, r2 = yield from self._pull2()
            elif s2:
                yield self.tick()
                c1, r1 = yield from self._pull1()
            elif c1 == c2:
                yield from self._emit(c1, r1, r2)
                yield self.tick()
                c1, r1 = yield from self._pull1()
                c2, r2 = yield from self._pull2()
            elif c1 < c2:
                yield self.tick()
                c1, r1 = yield from self._pull1()
            else:
                yield self.tick()
                c2, r2 = yield from self._pull2()


class Union(_TwoStreamJoiner):
    """Fiber union with ABSENT placeholders (sparse add iteration space)."""

    def run(self):
        c1, r1 = yield from self._pull1()
        c2, r2 = yield from self._pull2()
        while True:
            s1 = isinstance(c1, Stop)
            s2 = isinstance(c2, Stop)
            if c1 is DONE or c2 is DONE:
                assert c1 is DONE and c2 is DONE, (
                    f"{self.name}: streams ended at different points "
                    f"({c1!r} vs {c2!r})"
                )
                yield from self._emit_control(DONE)
                return
            if s1 and s2:
                assert c1.level == c2.level, (
                    f"{self.name}: misaligned stops {c1!r} vs {c2!r}"
                )
                yield from self._emit_control(c1)
                yield self.tick_control()
                c1, r1 = yield from self._pull1()
                c2, r2 = yield from self._pull2()
            elif s1:
                yield from self._emit(c2, ABSENT, r2)
                yield self.tick()
                c2, r2 = yield from self._pull2()
            elif s2:
                yield from self._emit(c1, r1, ABSENT)
                yield self.tick()
                c1, r1 = yield from self._pull1()
            elif c1 == c2:
                yield from self._emit(c1, r1, r2)
                yield self.tick()
                c1, r1 = yield from self._pull1()
                c2, r2 = yield from self._pull2()
            elif c1 < c2:
                yield from self._emit(c1, r1, ABSENT)
                yield self.tick()
                c1, r1 = yield from self._pull1()
            else:
                yield from self._emit(c2, ABSENT, r2)
                yield self.tick()
                c2, r2 = yield from self._pull2()
