"""Function units: pipelined unary/binary operators with II and latency.

These model the archetypal dataflow compute unit: a pipeline that accepts
one input set per initiation interval (``ii``) and produces the result
``latency`` cycles later.  Following the paper's modeling idiom, the
unit's local clock tracks *issue* time (advancing by ``ii`` per input);
pipeline depth cannot be charged by advancing and then rolling the clock
back (time is monotonic), so it lives on the *output channel's*
visibility stamp instead — configure the output channel with
``latency = pipeline depth`` at graph construction time.

The helpers below additionally take an optional ``extra_latency`` for
ad-hoc graphs where reconfiguring the channel is inconvenient; it
advances the clock before the enqueue, modeling an *unpipelined* unit
(the next issue waits out the latency too).
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.channel import Receiver, Sender
from ..core.context import Context, UNSET
from ..core.errors import ChannelClosed
from ..core.ops import IncrCycles
from ..core.time import Time


class UnaryFunction(Context):
    """Apply ``fn`` elementwise: one input per ``ii`` cycles."""

    checkpoint_attrs = ("_phase", "_value")

    def __init__(
        self,
        inp: Receiver,
        out: Sender,
        fn: Callable[[Any], Any],
        ii: Time = 1,
        extra_latency: Time = 0,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.inp = inp
        self.out = out
        self.fn = fn
        self.ii = ii
        self.extra_latency = extra_latency
        self._phase = 0  # 0=dequeue, 1=extra latency, 2=emit, 3=ii tick
        self._value = UNSET
        self.register(inp, out)

    def run(self):
        fn = self.fn
        try:
            while True:
                if self._phase == 0:
                    self._value = yield self.inp.dequeue()
                    self._phase = 1 if self.extra_latency else 2
                if self._phase == 1:
                    yield IncrCycles(self.extra_latency)
                    self._phase = 2
                if self._phase == 2:
                    yield self.out.enqueue(fn(self._value))
                    self._phase = 3
                if self._phase == 3:
                    yield IncrCycles(self.ii)
                    self._phase = 0
        except ChannelClosed:
            return


class BinaryFunction(Context):
    """Apply ``fn`` to aligned pairs from two input channels.

    Both inputs are peeked before either is dequeued so the unit fires only
    when a full input set is available — the CSPT equivalent of the
    event-alignment code an event-driven model needs (Listing 2).
    """

    checkpoint_attrs = ("_phase", "_a", "_b")

    def __init__(
        self,
        left: Receiver,
        right: Receiver,
        out: Sender,
        fn: Callable[[Any, Any], Any],
        ii: Time = 1,
        extra_latency: Time = 0,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.left = left
        self.right = right
        self.out = out
        self.fn = fn
        self.ii = ii
        self.extra_latency = extra_latency
        # 0=peek left, 1=peek right, 2=dequeue left, 3=dequeue right,
        # 4=extra latency, 5=emit, 6=ii tick.
        self._phase = 0
        self._a = UNSET
        self._b = UNSET
        self.register(left, right, out)

    def run(self):
        fn = self.fn
        try:
            while True:
                if self._phase == 0:
                    self._a = yield self.left.peek()
                    self._phase = 1
                if self._phase == 1:
                    self._b = yield self.right.peek()
                    self._phase = 2
                if self._phase == 2:
                    yield self.left.dequeue()
                    self._phase = 3
                if self._phase == 3:
                    yield self.right.dequeue()
                    self._phase = 4 if self.extra_latency else 5
                if self._phase == 4:
                    yield IncrCycles(self.extra_latency)
                    self._phase = 5
                if self._phase == 5:
                    yield self.out.enqueue(fn(self._a, self._b))
                    self._phase = 6
                if self._phase == 6:
                    yield IncrCycles(self.ii)
                    self._phase = 0
        except ChannelClosed:
            return
