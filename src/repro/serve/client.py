"""A thin synchronous client for :mod:`repro.serve`.

Stdlib sockets only: the client speaks the same minimal HTTP/1.1 the
server does, reads the ndjson event stream to EOF, and rebuilds the
server's typed errors (:class:`AdmissionError`, :class:`TenantBudgetError`,
:class:`SpecError`) so remote failures are caught exactly like local
ones::

    client = ServeClient(("127.0.0.1", 8750))
    result = client.submit(spec, tenant="ci")
    result.summary.elapsed_cycles   # a real RunSummary
    result.result_dense()           # np.ndarray, bit-identical to local

The wire format is JSON end to end and Python floats round-trip through
JSON exactly, so ``result.summary`` equals the summary a local
``Program.run`` of the same spec would produce — the service boundary
adds no numeric drift.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from ..core.executor.base import RunSummary
from ..sam.spec import ProgramSpec, decode_tensor
from .errors import ServeError, error_from_wire


@dataclass
class RunResult:
    """One completed remote run."""

    summary: RunSummary
    request_id: str
    #: ``"hit"`` when the server replayed a cached plan, else ``"miss"``.
    plan: str = "miss"
    #: True when this request was coalesced onto an identical in-flight run.
    coalesced: bool = False
    #: Encoded result tensor (``None`` when ``return_result=False``).
    result: Optional[dict[str, Any]] = None
    #: Live metric samples streamed during the run, in arrival order.
    samples: list[dict[str, Any]] = field(default_factory=list)

    def result_dense(self):
        """The run's dense result as an ``np.ndarray``."""
        if self.result is None:
            raise ValueError("server did not return a result tensor")
        tensor = decode_tensor(self.result)
        return tensor if not hasattr(tensor, "to_dense") else tensor.to_dense()


class ServeClient:
    """Blocking client for one server address.

    Control-plane GETs (``/metrics``, ``/healthz``) ride one persistent
    keep-alive connection — responses are Content-Length framed, so
    sequential requests reuse the socket, and a dead peer (server
    restart, idle timeout) is handled by one transparent reconnect.
    ``/run`` submissions use a dedicated connection per request: the
    ndjson event stream is framed by EOF, so it inherently closes.
    """

    def __init__(self, address: tuple[str, int], timeout: float = 120.0):
        self.address = (address[0], int(address[1]))
        self.timeout = timeout
        #: The cached keep-alive socket (GET requests only).
        self._sock: Optional[socket.socket] = None

    def close(self) -> None:
        """Drop the cached keep-alive connection (idempotent)."""
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already dead
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: ProgramSpec | dict[str, Any],
        *,
        tenant: str = "default",
        request_id: Optional[str] = None,
        stream_metrics_s: Optional[float] = None,
        return_result: bool = True,
        on_sample: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> RunResult:
        """Run ``spec`` remotely and return its :class:`RunResult`.

        Raises the server's typed error (:class:`AdmissionError` on
        shed, :class:`TenantBudgetError` on budget rejection,
        :class:`SpecError` on a malformed spec) — the same types a local
        caller would see.
        """
        samples: list[dict[str, Any]] = []
        outcome: Optional[dict[str, Any]] = None
        for event in self.submit_stream(
            spec,
            tenant=tenant,
            request_id=request_id,
            stream_metrics_s=stream_metrics_s,
            return_result=return_result,
        ):
            kind = event.get("event")
            if kind == "sample":
                samples.append(event["sample"])
                if on_sample is not None:
                    on_sample(event["sample"])
            elif kind == "error":
                raise error_from_wire(event.get("error", {}))
            elif kind == "summary":
                outcome = event
        if outcome is None:
            raise ServeError("server closed the stream without a summary")
        return RunResult(
            summary=RunSummary.from_dict(outcome["summary"]),
            request_id=str(outcome.get("request_id", "")),
            plan=outcome.get("plan", "miss"),
            coalesced=bool(outcome.get("coalesced", False)),
            result=outcome.get("result"),
            samples=samples,
        )

    def submit_stream(
        self,
        spec: ProgramSpec | dict[str, Any],
        *,
        tenant: str = "default",
        request_id: Optional[str] = None,
        stream_metrics_s: Optional[float] = None,
        return_result: bool = True,
    ) -> Iterator[dict[str, Any]]:
        """Yield the raw ndjson events of one run as they arrive."""
        wire = spec.to_dict() if isinstance(spec, ProgramSpec) else spec
        envelope: dict[str, Any] = {
            "spec": wire,
            "tenant": tenant,
            "return_result": return_result,
        }
        if request_id is not None:
            envelope["request_id"] = request_id
        if stream_metrics_s is not None:
            envelope["stream_metrics_s"] = stream_metrics_s
        status, body_iter = self._request("POST", "/run", envelope)
        if status != 200:
            payload = json.loads(b"".join(body_iter) or b"{}")
            raise error_from_wire(payload.get("error", {}))
        for line in _iter_lines(body_iter):
            yield json.loads(line)

    def metrics(self) -> dict[str, Any]:
        """The server's ``/metrics`` payload."""
        return self._get_json("/metrics")

    def healthy(self) -> bool:
        try:
            return bool(self._get_json("/healthz").get("ok"))
        except (OSError, ServeError, json.JSONDecodeError):
            return False

    # ------------------------------------------------------------------
    # HTTP plumbing.
    # ------------------------------------------------------------------

    def _get_json(self, path: str) -> dict[str, Any]:
        status, body = self._framed_request(path)
        payload = json.loads(body or b"{}")
        if status != 200:
            raise error_from_wire(payload.get("error", {"message": f"HTTP {status}"}))
        return payload

    def _framed_request(self, path: str) -> tuple[int, bytes]:
        """One GET over the persistent connection.

        A send/recv failure on a *reused* socket means the peer died
        between requests (restart, idle close) — reconnect once and
        retry; the request is a read-only GET, so the retry is safe.
        Failures on a fresh connection propagate: the server is down.
        """
        request = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {self.address[0]}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode()
        for _attempt in range(2):
            sock = self._sock
            reused = sock is not None
            if sock is None:
                sock = socket.create_connection(
                    self.address, timeout=self.timeout
                )
            try:
                sock.sendall(request)
                status, headers, body = _read_framed(sock)
            except (OSError, ServeError):
                sock.close()
                self._sock = None
                if not reused:
                    raise
                continue  # stale keep-alive socket: reconnect once
            if headers.get("connection", "").lower() == "close":
                sock.close()
                self._sock = None
            else:
                self._sock = sock
            return status, body
        raise ServeError("keep-alive reconnect failed")  # pragma: no cover

    def _request(
        self, method: str, path: str, payload: Optional[dict[str, Any]]
    ) -> tuple[int, Iterator[bytes]]:
        body = json.dumps(payload).encode() if payload is not None else b""
        request = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.address[0]}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode() + body
        sock = socket.create_connection(self.address, timeout=self.timeout)
        try:
            sock.sendall(request)
            status, prefix = self._read_status(sock)
        except BaseException:
            sock.close()
            raise
        return status, _iter_body(sock, prefix)

    @staticmethod
    def _read_status(sock: socket.socket) -> tuple[int, bytes]:
        """Consume the status line and headers; return the status code and
        any body bytes already read past the header terminator."""
        buffer = b""
        while b"\r\n\r\n" not in buffer:
            chunk = sock.recv(4096)
            if not chunk:
                raise ServeError("server closed connection before headers")
            buffer += chunk
        head, _, rest = buffer.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        try:
            status = int(status_line.split(" ", 2)[1])
        except (IndexError, ValueError) as exc:
            raise ServeError(f"malformed status line: {status_line!r}") from exc
        return status, rest


def _read_framed(sock: socket.socket) -> tuple[int, dict[str, str], bytes]:
    """Read one Content-Length-framed response without closing the
    socket (the keep-alive path)."""
    buffer = b""
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(4096)
        if not chunk:
            raise ServeError("server closed connection before headers")
        buffer += chunk
    head, _, body = buffer.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    status_line = lines[0].decode("latin-1")
    try:
        status = int(status_line.split(" ", 2)[1])
    except (IndexError, ValueError) as exc:
        raise ServeError(f"malformed status line: {status_line!r}") from exc
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    while len(body) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise ServeError("server closed connection mid-body")
        body += chunk
    return status, headers, body[:length]


def _iter_body(sock: socket.socket, prefix: bytes = b"") -> Iterator[bytes]:
    """Yield body bytes until EOF (the server always closes)."""
    try:
        if prefix:
            yield prefix
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return
            yield chunk
    finally:
        sock.close()


def _iter_lines(chunks: Iterator[bytes]) -> Iterator[bytes]:
    buffer = b""
    for chunk in chunks:
        buffer += chunk
        while b"\n" in buffer:
            line, _, buffer = buffer.partition(b"\n")
            if line.strip():
                yield line
    if buffer.strip():
        yield buffer
