"""Cross-executor determinism on full SAM kernels.

The paper's exactness claim at application scale: the same SAM kernel
graph, executed on the cooperative executor (every policy) and on the
threaded executor, yields identical outputs and identical simulated cycle
counts.
"""

import numpy as np

from repro.core import FairPolicy, SequentialExecutor
from repro.sam import CsfTensor
from repro.sam.graphs import build_mmadd, build_sparse_mha, build_spmspm
from repro.sam.primitives import TimingParams
from repro.sam.tensor import random_dense


def mmadd_kernel():
    a = random_dense(6, 6, density=0.5, seed=21)
    b = random_dense(6, 6, density=0.5, seed=22)
    return build_mmadd(
        CsfTensor.from_dense(a, "cc"),
        CsfTensor.from_dense(b, "cc"),
        depth=3,
        timing=TimingParams(ii=2, stop_bubble=1),
    )


class TestKernelDeterminism:
    def test_mmadd_policies_and_threads_agree(self):
        outcomes = []
        for run_kind in ["fifo", "fair", "threaded"]:
            kernel = mmadd_kernel()
            if run_kind == "threaded":
                summary = kernel.run(executor="threaded")
            elif run_kind == "fair":
                summary = SequentialExecutor(
                    policy=FairPolicy(timeslice=3)
                ).execute(kernel.program)
                kernel.summary = summary
            else:
                summary = kernel.run()
            outcomes.append(
                (summary.elapsed_cycles, kernel.result_dense().tobytes())
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_spmspm_threaded_matches_sequential(self):
        b = random_dense(6, 6, density=0.3, seed=23)
        ct = random_dense(6, 6, density=0.3, seed=24)

        def build():
            return build_spmspm(
                CsfTensor.from_dense(b, "cc"),
                CsfTensor.from_dense(ct, "cc"),
                depth=4,
            )

        seq = build()
        s_seq = seq.run()
        thr = build()
        s_thr = thr.run(executor="threaded")
        assert np.allclose(seq.result_dense(), thr.result_dense())
        assert s_seq.elapsed_cycles == s_thr.elapsed_cycles

    def test_mha_threaded_matches_sequential(self):
        rng = np.random.default_rng(3)
        H, N, d = 2, 6, 3
        mask = (rng.random((H, N, N)) < 0.5).astype(float)
        for h in range(H):
            np.fill_diagonal(mask[h], 1.0)
        q = rng.standard_normal((H, N, d))
        k = rng.standard_normal((H, N, d))
        v = rng.standard_normal((H, N, d))

        def build():
            return build_sparse_mha(
                CsfTensor.from_dense(mask, "dcc"), q, k, v, depth=6,
                softmax_depth=32,
            )

        seq = build()
        s_seq = seq.run()
        thr = build()
        s_thr = thr.run(executor="threaded")
        assert np.allclose(seq.result_dense(), thr.result_dense())
        assert s_seq.elapsed_cycles == s_thr.elapsed_cycles
