"""Tests for simulation tracing."""

from repro.core import ProgramBuilder, SequentialExecutor, Tracer
from repro.contexts import Collector, RampSource, UnaryFunction


def traced_pipeline(n=5, capture_payloads=False):
    builder = ProgramBuilder()
    s1, r1 = builder.bounded(4, name="raw")
    s2, r2 = builder.bounded(4, name="doubled")
    builder.add(RampSource(s1, n, name="src"))
    builder.add(UnaryFunction(r1, s2, lambda x: 2 * x, name="double"))
    builder.add(Collector(r2, name="sink"))
    tracer = Tracer(capture_payloads=capture_payloads)
    SequentialExecutor(tracer=tracer).execute(builder.build())
    return tracer


class TestTracer:
    def test_records_channel_ops(self):
        tracer = traced_pipeline()
        assert len(tracer.for_channel("raw")) == 10  # 5 enqueues + 5 dequeues
        assert len(list(tracer.kinds("enqueue"))) == 10  # both channels

    def test_events_carry_context_names(self):
        tracer = traced_pipeline()
        assert {event.context for event in tracer} == {"src", "double", "sink"}

    def test_payloads_off_by_default(self):
        tracer = traced_pipeline()
        assert all(event.payload is None for event in tracer)

    def test_payloads_captured_when_enabled(self):
        tracer = traced_pipeline(capture_payloads=True)
        dequeued = [
            event.payload
            for event in tracer.for_channel("doubled")
            if event.kind == "dequeue"
        ]
        assert dequeued == [0, 2, 4, 6, 8]

    def test_completion_times_nondecreasing(self):
        tracer = traced_pipeline(n=20)
        times = tracer.completion_times("doubled")
        assert len(times) == 20
        assert times == sorted(times)

    def test_for_context_filter(self):
        tracer = traced_pipeline()
        src_events = tracer.for_context("src")
        assert src_events
        assert all(event.context == "src" for event in src_events)

    def test_advance_events_recorded(self):
        tracer = traced_pipeline()
        assert any(event.kind == "advance" for event in tracer)

    def test_tracing_does_not_change_results(self):
        from repro.contexts import Checker

        builder = ProgramBuilder()
        s1, r1 = builder.bounded(2)
        builder.add(RampSource(s1, 6))
        builder.add(Checker(r1, list(range(6))))
        untraced = SequentialExecutor().execute(builder.build())

        builder2 = ProgramBuilder()
        s2, r2 = builder2.bounded(2)
        builder2.add(RampSource(s2, 6))
        builder2.add(Checker(r2, list(range(6))))
        traced = SequentialExecutor(tracer=Tracer()).execute(builder2.build())
        assert traced.elapsed_cycles == untraced.elapsed_cycles
