"""Repeat and RepeatSigGen: SAM's outer-loop replication primitives.

``RepeatSigGen`` turns a coordinate stream into a repeat-signal stream:
one ``R`` token per coordinate, control tokens passed through.

``Repeat`` replicates each input reference according to one repeat-signal
group: every ``R`` re-emits the current reference; a ``Stop(k)`` ends the
group (emitted through) and advances to the next reference — additionally
consuming the input reference stream's own ``Stop(k - 1)`` when ``k >= 1``
(the signal stream is one level deeper than the reference stream).

This is the primitive whose two implementations the paper's Fig. 7
compares; the cycle-based counterpart lives in
:mod:`repro.samlegacy.primitives.repeat`.
"""

from __future__ import annotations

from ...core.channel import Receiver, Sender
from ...core.ops import FusedOps
from ..token import DONE, REPEAT, Stop
from .base import SamContext, TimingParams


class RepeatSigGen(SamContext):
    """Coordinates in, repeat signals out (one ``R`` per coordinate)."""

    def __init__(
        self,
        in_crd: Receiver,
        out_sig: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_crd = in_crd
        self.out_sig = out_sig
        self.register(in_crd, out_sig)

    def run(self):
        deq = self.in_crd.dequeue()
        enq = self.out_sig.enqueue(None)
        step = FusedOps(enq, self.tick(), deq)
        step_control = FusedOps(enq, self.tick_control(), deq)
        token = yield deq
        while True:
            if token is DONE:
                enq.data = DONE
                yield enq
                return
            if token.__class__ is Stop:
                enq.data = token
                token = (yield step_control)[2]
            else:
                enq.data = REPEAT
                token = (yield step)[2]


class Repeat(SamContext):
    """Replicate references per repeat-signal group (see module docs)."""

    def __init__(
        self,
        in_ref: Receiver,
        in_sig: Receiver,
        out_ref: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_ref = in_ref
        self.in_sig = in_sig
        self.out_ref = out_ref
        self.register(in_ref, in_sig, out_ref)

    def run(self):
        deq_ref = self.in_ref.dequeue()
        deq_sig = self.in_sig.dequeue()
        enq = self.out_ref.enqueue(None)
        # Hot path: emit the replicated ref, tick, pull the next signal.
        emit_sig = FusedOps(enq, self.tick(), deq_sig)
        stop_flush = FusedOps(enq, self.tick_control())
        stop_pull = FusedOps(enq, self.tick_control(), deq_ref)
        ref = yield deq_ref
        while True:
            if ref is DONE:
                signal = yield deq_sig
                assert signal is DONE, (
                    f"{self.name}: ref stream done but signal stream sent "
                    f"{signal!r}"
                )
                enq.data = DONE
                yield enq
                return
            if ref.__class__ is Stop:
                # An empty reference fiber: the signal stream presents the
                # matching one-deeper stop; consume the pair and pass the
                # deeper stop through.
                signal = yield deq_sig
                assert isinstance(signal, Stop) and signal.level == ref.level + 1, (
                    f"{self.name}: ref stop {ref!r} paired with signal "
                    f"{signal!r} (expected Stop({ref.level + 1}))"
                )
                enq.data = signal
                ref = (yield stop_pull)[2]
                continue
            # Replicate this ref for one signal group.
            signal = yield deq_sig
            while signal is REPEAT:
                enq.data = ref
                signal = (yield emit_sig)[2]
            assert isinstance(signal, Stop), (
                f"{self.name}: signal stream ended mid-group with "
                f"{signal!r}"
            )
            enq.data = signal
            if signal.level >= 1:
                # The group closed outer levels too: consume the ref
                # stream's matching (one-shallower) stop.
                matching = (yield stop_pull)[2]
                assert (
                    isinstance(matching, Stop)
                    and matching.level == signal.level - 1
                ), (
                    f"{self.name}: expected ref-stream Stop("
                    f"{signal.level - 1}), got {matching!r}"
                )
                ref = yield deq_ref
            else:
                yield stop_flush
                ref = yield deq_ref
