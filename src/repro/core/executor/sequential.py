"""Deterministic cooperative executor.

This executor runs a DAM program on a single OS thread by cooperatively
scheduling context generators.  It is *event-queue-free* in the paper's
sense: there is no ordered global event structure.  Instead it keeps a
ready queue of runnable contexts and, per channel, at most one blocked
sender and one blocked receiver; channel activity wakes the opposite
endpoint directly (the cooperative analog of the paper's pairwise
synchronization).

Because channel semantics are pure functions of simulated state
(:mod:`repro.core.channel`), the simulated results are identical to the
threaded executor's — only real execution order differs.  The sequential
executor is also the vehicle for the scheduling-policy study (Table I):
policies change the real interleaving and the switch counters, never the
simulated outcome.

Deadlock detection falls out naturally: if the ready queue empties while
unfinished contexts remain, the blocked set *is* the deadlock cycle and is
reported as a stall report naming each blocked context, the channel it is
parked on, and both endpoint clocks — the debugging story behind the
paper's undersized-channel observations.

Observability: attach a :class:`repro.obs.Observability` (``obs=``) to
record per-context trace buffers and fold run metrics; the legacy
``tracer=`` keyword still accepts a :class:`repro.core.trace.Tracer`.
"""

from __future__ import annotations

import time as _wallclock
from typing import Any, Optional

from ...obs import Observability, fold_channel_metrics, fold_context_metrics
from ...obs.stall import StallReport, stall_for
from ..channel import Channel
from ..context import Context
from ..errors import ChannelClosed, DeadlockError, SimulationError
from ..ops import AdvanceTo, Dequeue, Enqueue, IncrCycles, Op, Peek, ViewTime, WaitUntil
from ..program import Program
from .base import Executor, RunSummary
from .policies import FifoPolicy, SchedulingPolicy, make_policy

_READY = 0
_BLOCKED = 1
_DONE = 2


class _ContextState:
    """Executor-side bookkeeping for one context."""

    __slots__ = (
        "context",
        "gen",
        "status",
        "in_ready",
        "pending_value",
        "pending_exc",
        "retry_op",
        "blocked_detail",
        "buffer",
        "ops",
        "wall_seconds",
    )

    def __init__(self, context: Context):
        self.context = context
        self.gen = context.run()
        self.status = _READY
        self.in_ready = False
        self.pending_value: Any = None
        self.pending_exc: BaseException | None = None
        # An op that blocked and must be re-attempted before resuming the
        # generator (its result is then delivered via pending_value).
        self.retry_op: Op | None = None
        self.blocked_detail: str = ""
        # Observability: per-context trace buffer and metric tallies.
        self.buffer: Any = None
        self.ops = 0
        self.wall_seconds = 0.0


class SequentialExecutor(Executor):
    """Cooperative, single-threaded, deterministic executor.

    Parameters
    ----------
    policy:
        Ready-queue discipline: ``"fifo"`` (run-to-block, default) or
        ``"fair"`` (timesliced with wakeup boosting), or a
        :class:`~repro.core.executor.policies.SchedulingPolicy` instance.
    max_ops:
        Optional safety valve: abort with :class:`SimulationError` after
        this many operations (guards against runaway non-terminating
        programs in tests).
    tracer:
        Legacy: a :class:`repro.core.trace.Tracer` (now an alias of
        :class:`repro.obs.TraceCollector`); wrapped into ``obs``.
    obs:
        A :class:`repro.obs.Observability` collecting the run's trace
        and/or metrics.
    """

    name = "sequential"

    def __init__(
        self,
        policy: str | SchedulingPolicy = "fifo",
        max_ops: Optional[int] = None,
        tracer=None,
        obs: Optional[Observability] = None,
    ):
        self.policy = make_policy(policy)
        self.max_ops = max_ops
        if obs is None and tracer is not None:
            obs = Observability.from_trace(tracer)
        self.obs = obs
        #: The active trace collector (None when tracing is off).
        self.tracer = obs.trace if obs is not None else None
        self.context_switches = 0
        self.wakeups = 0
        self.preemptions = 0
        self.ops_executed = 0

    # ------------------------------------------------------------------

    def execute(self, program: Program) -> RunSummary:
        start = _wallclock.perf_counter()
        states = {id(ctx): _ContextState(ctx) for ctx in program.contexts}
        # Waiters on another context's clock: target id -> [(threshold, state)].
        self._time_waiters: dict[int, list[tuple[Any, _ContextState]]] = {}
        # Fast-path flag: most programs never use WaitUntil, so the per-op
        # waiter check is skipped entirely until one registers.
        self._any_time_waiters = False
        self._states = states

        obs = self.obs
        trace = obs.trace if obs is not None else None
        collect_wall = obs is not None and obs.metrics is not None
        if trace is not None:
            for state in states.values():
                state.buffer = trace.buffer(state.context.name)

        policy = self.policy
        for ctx in program.contexts:
            policy.push(states[id(ctx)], woken=False)

        try:
            self._schedule_loop(collect_wall)
            unfinished = [st for st in states.values() if st.status != _DONE]
            if unfinished:
                report = self._stall_report(unfinished)
                if obs is not None:
                    obs.stall_report = report
                raise DeadlockError(report.lines())
        finally:
            # On any abort (SimulationError, DeadlockError, max_ops), close
            # the generators of every context that did not run to completion
            # so their ``finally:`` blocks execute now, not at interpreter
            # shutdown (where GeneratorExit/ResourceWarning noise leaks into
            # test output).  Closing an exhausted generator is a no-op, so
            # the happy path pays one cheap call per context.
            self._close_generators(states)

        elapsed = self._makespan(program)
        return RunSummary(
            elapsed_cycles=elapsed,
            real_seconds=_wallclock.perf_counter() - start,
            context_times={
                ctx.name: ctx.finish_time for ctx in program.contexts
            },
            executor=self.name,
            policy=self.policy.name,
            context_switches=self.context_switches,
            wakeups=self.wakeups,
            preemptions=self.preemptions,
            ops_executed=self.ops_executed,
            metrics=self._fold_metrics(program, states),
        )

    def _schedule_loop(self, collect_wall: bool) -> None:
        """Drain the ready queue; ask :meth:`_idle` for more work when it
        empties (subclass hook — the process executor's workers poll their
        cross-process shuttles there)."""
        policy = self.policy
        previous: _ContextState | None = None
        while True:
            while policy:
                state = policy.pop()
                if state.status != _READY:
                    continue
                if previous is not None and state is not previous:
                    self.context_switches += 1
                previous = state
                if collect_wall:
                    slice_start = _wallclock.perf_counter()
                    self._run_slice(state, policy.timeslice)
                    state.wall_seconds += _wallclock.perf_counter() - slice_start
                else:
                    self._run_slice(state, policy.timeslice)
                if state.status == _READY:
                    # Slice expired without blocking: preempted.
                    self.preemptions += 1
                    policy.push(state, woken=False)
            if not self._idle():
                return

    def _idle(self) -> bool:
        """Called when the ready queue empties; return True if new work may
        have arrived.  The purely local executor has no external event
        sources, so an empty queue is final (run complete or deadlocked)."""
        return False

    @staticmethod
    def _close_generators(states: dict[int, "_ContextState"]) -> None:
        for state in states.values():
            if state.status != _DONE:
                try:
                    state.gen.close()
                except Exception:  # noqa: BLE001 - cleanup must not mask the abort
                    pass

    # ------------------------------------------------------------------

    def _stall_report(self, unfinished: list[_ContextState]) -> StallReport:
        """Diagnose the blocked set: who is parked, on which channel, and
        at what simulated time each endpoint sits."""
        stalls = []
        for state in unfinished:
            op = state.retry_op
            channel = peer = None
            if isinstance(op, Enqueue):
                channel = op.sender.channel
            elif isinstance(op, (Dequeue, Peek)):
                channel = op.receiver.channel
            elif isinstance(op, WaitUntil):
                peer = op.context
            stalls.append(
                stall_for(
                    state.context,
                    state.blocked_detail or "not started",
                    channel=channel,
                    peer=peer,
                )
            )
        return StallReport(stalls)

    def _fold_metrics(
        self, program: Program, states: dict[int, _ContextState]
    ) -> Optional[dict]:
        if self.obs is None or self.obs.metrics is None:
            return None
        registry = self.obs.metrics
        fold_channel_metrics(registry, program.channels)
        for state in states.values():
            ctx = state.context
            fold_context_metrics(
                registry,
                ctx.name,
                ops=state.ops,
                finish_time=ctx.finish_time,
                wall_seconds=state.wall_seconds,
            )
        registry.counter("executor_context_switches").inc(self.context_switches)
        registry.counter("executor_wakeups").inc(self.wakeups)
        registry.counter("executor_preemptions").inc(self.preemptions)
        registry.counter("executor_ops").inc(self.ops_executed)
        return registry.snapshot()

    # ------------------------------------------------------------------

    def _run_slice(self, state: _ContextState, timeslice: Optional[int]) -> None:
        """Run one context until it blocks, finishes, or exhausts its slice."""
        remaining = timeslice if timeslice is not None else -1

        # A context woken from a blocking op must first re-attempt that op.
        if state.retry_op is not None:
            op = state.retry_op
            state.retry_op = None
            if not self._dispatch(state, op):
                return  # blocked again
            if state.status == _DONE:
                return

        gen_send = state.gen.send
        gen_throw = state.gen.throw
        ctx = state.context
        while remaining != 0:
            remaining -= 1
            try:
                if state.pending_exc is not None:
                    exc = state.pending_exc
                    state.pending_exc = None
                    op = gen_throw(exc)
                else:
                    value = state.pending_value
                    state.pending_value = None
                    op = gen_send(value)
            except StopIteration:
                self._finish(state)
                return
            except ChannelClosed:
                # An uncaught ChannelClosed is graceful wind-down.
                self._finish(state)
                return
            except DeadlockError:
                raise
            except BaseException as exc:  # noqa: BLE001 - reported faithfully
                self._finish(state)
                raise SimulationError(ctx.name, exc) from exc

            self.ops_executed += 1
            state.ops += 1
            if self.max_ops is not None and self.ops_executed > self.max_ops:
                raise SimulationError(
                    ctx.name,
                    RuntimeError(f"exceeded max_ops={self.max_ops}"),
                )
            if not self._dispatch(state, op):
                return  # blocked
            if state.status == _DONE:
                return

    def _dispatch(self, state: _ContextState, op: Op) -> bool:
        """Attempt ``op``; return False (and park the context) if it blocks."""
        clock = state.context.time
        kind = type(op)

        if kind is Enqueue:
            channel = op.sender.channel
            if channel.sender_try_reserve(clock):
                channel.do_enqueue(clock, op.data)
                state.pending_value = None
                waiter = channel.waiting_receiver
                if waiter is not None:
                    channel.waiting_receiver = None
                    self._wake(waiter)
                if self._any_time_waiters:
                    self._drain_time_waiters(state.context)
                if state.buffer is not None:
                    state.buffer.append(
                        "enqueue", channel.name, clock.now(), op.data
                    )
                return True
            self._block(state, op, f"enqueue on full {channel.name}")
            channel.waiting_sender = state
            return False

        if kind is Dequeue:
            channel = op.receiver.channel
            if channel.can_dequeue():
                state.pending_value = channel.do_dequeue(clock)
                waiter = channel.waiting_sender
                if waiter is not None:
                    channel.waiting_sender = None
                    self._wake(waiter)
                if self._any_time_waiters:
                    self._drain_time_waiters(state.context)
                if state.buffer is not None:
                    state.buffer.append(
                        "dequeue", channel.name, clock.now(),
                        state.pending_value,
                    )
                return True
            if channel.closed_for_receiver:
                state.pending_exc = ChannelClosed(channel.name)
                return True
            self._block(state, op, f"dequeue on empty {channel.name}")
            channel.waiting_receiver = state
            return False

        if kind is Peek:
            channel = op.receiver.channel
            if channel.can_dequeue():
                state.pending_value = channel.do_peek(clock)
                if self._any_time_waiters:
                    self._drain_time_waiters(state.context)
                if state.buffer is not None:
                    state.buffer.append(
                        "peek", channel.name, clock.now(),
                        state.pending_value,
                    )
                return True
            if channel.closed_for_receiver:
                state.pending_exc = ChannelClosed(channel.name)
                return True
            self._block(state, op, f"peek on empty {channel.name}")
            channel.waiting_receiver = state
            return False

        if kind is IncrCycles:
            clock.incr(op.cycles)
            state.pending_value = None
            if self._any_time_waiters:
                self._drain_time_waiters(state.context)
            if state.buffer is not None:
                state.buffer.append("advance", None, clock.now())
            return True

        if kind is AdvanceTo:
            clock.advance(op.time)
            state.pending_value = None
            if self._any_time_waiters:
                self._drain_time_waiters(state.context)
            if state.buffer is not None:
                state.buffer.append("advance", None, clock.now())
            return True

        if kind is ViewTime:
            state.pending_value = op.context.time.now()
            return True

        if kind is WaitUntil:
            target = op.context
            if target.time.now() >= op.time:
                state.pending_value = target.time.now()
                return True
            self._block(state, op, f"wait-until {op.time} on {target.name}")
            self._time_waiters.setdefault(id(target), []).append((op.time, state))
            self._any_time_waiters = True
            return False

        raise SimulationError(
            state.context.name,
            TypeError(f"context yielded a non-op value: {op!r}"),
        )

    # ------------------------------------------------------------------

    def _block(self, state: _ContextState, op: Op, detail: str) -> None:
        state.status = _BLOCKED
        state.retry_op = op
        state.blocked_detail = detail

    def _wake(self, state: _ContextState) -> None:
        if state.status != _BLOCKED:
            return
        state.status = _READY
        state.blocked_detail = ""
        self.wakeups += 1
        self.policy.push(state, woken=True)

    def _drain_time_waiters(self, target: Context) -> None:
        """Wake WaitUntil waiters whose threshold ``target`` has passed."""
        waiters = self._time_waiters.get(id(target))
        if not waiters:
            return
        now = target.time.now()
        still_waiting: list[tuple[Any, _ContextState]] = []
        for threshold, waiter in waiters:
            if now >= threshold:
                waiter.pending_value = now
                waiter.retry_op = None  # result already delivered
                self._wake(waiter)
            else:
                still_waiting.append((threshold, waiter))
        if still_waiting:
            self._time_waiters[id(target)] = still_waiting
        else:
            del self._time_waiters[id(target)]
            if not self._time_waiters:
                self._any_time_waiters = False

    def _finish(self, state: _ContextState) -> None:
        """Mark a context finished and propagate closure to its channels."""
        ctx = state.context
        state.status = _DONE
        ctx.finish_time = ctx.time.now()
        if state.buffer is not None:
            state.buffer.append("finish", None, ctx.finish_time)
        ctx.time.finish()
        for sender in ctx.senders:
            channel = sender.channel
            channel.close_sender()
            waiter = channel.waiting_receiver
            if waiter is not None:
                channel.waiting_receiver = None
                self._wake(waiter)
        for receiver in ctx.receivers:
            channel = receiver.channel
            channel.close_receiver()
            waiter = channel.waiting_sender
            if waiter is not None:
                channel.waiting_sender = None
                self._wake(waiter)
        self._drain_time_waiters(ctx)
