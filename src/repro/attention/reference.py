"""Numpy reference for the attention case study."""

from __future__ import annotations

import numpy as np


def attention_reference(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
    """O = softmax(Q K^T / sqrt(d)) V, matching the streaming pipelines.

    The streaming implementations use the scaled softmax (divide by
    sqrt(d)) without max subtraction, as discussed in the paper's
    footnote; inputs in tests are kept small enough that this is
    numerically safe.
    """
    d = q.shape[-1]
    scores = q @ k.T / np.sqrt(d)
    exp = np.exp(scores)
    return (exp / exp.sum(axis=-1, keepdims=True)) @ v
