"""Legacy Repeat and RepeatSigGen: the Fig. 7 comparison subject.

The original SAM simulator's Repeat block is the paper's showcase of how a
cycle-based abstraction bloats primitive code: the current reference, the
group progress, the owed stop, and the end-of-stream handshake all become
instance state threaded through every tick.  This module is written in
exactly that style on purpose — the DAM counterpart is the ~40-line
generator in :mod:`repro.sam.primitives.repeat`.
"""

from __future__ import annotations

from ...cyclesim.channel import CycleChannel
from ...sam.token import DONE, REPEAT, Stop
from ..base import LegacySamPrimitive

# RepeatSigGen has no internal states; Repeat needs several.
_NEED_REF = 0     # must pop the next reference before serving signals
_SERVING = 1      # replicating the held reference for the current group
_CONSUME_REF_STOP = 2  # owe a pop of the ref stream's matching stop
_CONSUME_SIG_DONE = 3  # ref stream done; await the signal stream's DONE
_PUSH_DONE = 4    # owe the output DONE
_PAIR_STOP = 5    # empty ref fiber: owe a signal-stop consume + emit
_HALT = 6


class LegacyRepeatSigGen(LegacySamPrimitive):
    """Coordinates in, one R per coordinate out; controls pass through."""

    def __init__(self, in_crd: CycleChannel, out_sig: CycleChannel, name=None, ii: int = 1):
        super().__init__(name=name, ii=ii)
        self.in_crd = in_crd
        self.out_sig = out_sig

    def tick(self, cycle: int) -> None:
        if self.finished:
            return
        if self.stalled():
            return
        if not (self.in_crd.can_pop() and self.out_sig.can_push()):
            return
        token = self.in_crd.pop()
        self.charge()
        if token is DONE:
            self.out_sig.push(DONE)
            self.finished = True
        elif isinstance(token, Stop):
            self.out_sig.push(token)
        else:
            self.out_sig.push(REPEAT)


class LegacyRepeat(LegacySamPrimitive):
    """Replicate references per signal group (cycle-based state machine)."""

    def __init__(
        self,
        in_ref: CycleChannel,
        in_sig: CycleChannel,
        out_ref: CycleChannel,
        name: str | None = None,
        ii: int = 1,
    ):
        super().__init__(name=name, ii=ii)
        self.in_ref = in_ref
        self.in_sig = in_sig
        self.out_ref = out_ref
        # Hand-managed state.
        self.state = _NEED_REF
        self.held_ref = None
        self.pending_stop_level = -1

    def tick(self, cycle: int) -> None:
        if self.stalled():
            return
        if self.state == _HALT:
            self.finished = True
            return

        if self.state == _NEED_REF:
            if not self.in_ref.can_pop():
                return
            token = self.in_ref.pop()
            if token is DONE:
                self.state = _CONSUME_SIG_DONE
                return
            if isinstance(token, Stop):
                # Empty reference fiber: pair with the signal stream's
                # one-deeper stop next cycle.
                self.pending_stop_level = token.level
                self.state = _PAIR_STOP
                return
            self.held_ref = token
            self.state = _SERVING
            return

        if self.state == _PAIR_STOP:
            if not (self.in_sig.can_pop() and self.out_ref.can_push()):
                return
            signal = self.in_sig.pop()
            if not (
                isinstance(signal, Stop)
                and signal.level == self.pending_stop_level + 1
            ):
                raise AssertionError(
                    f"{self.name}: ref stop S{self.pending_stop_level} paired "
                    f"with signal {signal!r}"
                )
            self.out_ref.push(signal)
            self.charge()
            self.pending_stop_level = -1
            self.state = _NEED_REF
            return

        if self.state == _SERVING:
            if not (self.in_sig.can_pop() and self.out_ref.can_push()):
                return
            signal = self.in_sig.pop()
            if signal is REPEAT:
                self.out_ref.push(self.held_ref)
                self.charge()
                return
            if not isinstance(signal, Stop):
                raise AssertionError(
                    f"{self.name}: signal stream ended mid-group with "
                    f"{signal!r}"
                )
            self.out_ref.push(signal)
            self.charge()
            if signal.level >= 1:
                self.pending_stop_level = signal.level - 1
                self.state = _CONSUME_REF_STOP
            else:
                self.state = _NEED_REF
            return

        if self.state == _CONSUME_REF_STOP:
            if not self.in_ref.can_pop():
                return
            matching = self.in_ref.pop()
            if not (
                isinstance(matching, Stop)
                and matching.level == self.pending_stop_level
            ):
                raise AssertionError(
                    f"{self.name}: expected ref-stream "
                    f"Stop({self.pending_stop_level}), got {matching!r}"
                )
            self.pending_stop_level = -1
            self.state = _NEED_REF
            return

        if self.state == _CONSUME_SIG_DONE:
            if not self.in_sig.can_pop():
                return
            signal = self.in_sig.pop()
            if signal is not DONE:
                raise AssertionError(
                    f"{self.name}: ref stream done but signal sent {signal!r}"
                )
            self.state = _PUSH_DONE
            return

        if self.state == _PUSH_DONE:
            if not self.out_ref.can_push():
                return
            self.out_ref.push(DONE)
            self.state = _HALT
            self.finished = True
            return
