"""Latency-sensitive inference batching (Section IX-A).

Inference launches when either (1) the batch reaches ``max_batch`` inputs
or (2) ``timeout`` simulated cycles have elapsed since the first input of
the batch arrived.  Event-driven models struggle here because an input's
result time depends on *possible future* inputs; with CSPT the batching
context simply runs ahead in simulated time, observing exact arrivals,
and passes (launch_time, size) records to an inference context that lags
behind and re-enacts them on its own clock.

Downstream consumers see only the inference context (correct completion
timestamps); upstream producers see only the batching context (correct
backpressure) — the time manipulation is invisible from both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.channel import Receiver, Sender
from ..core.context import Context
from ..core.errors import ChannelClosed
from ..core.ops import AdvanceTo, IncrCycles
from ..core.time import Time


@dataclass(frozen=True)
class BatchRecord:
    """What the batching context learned: when to launch, how many."""

    launch_time: Time
    size: int


class BatchingContext(Context):
    """Gathers requests into (launch_time, size) records.

    Requests are any payloads; their *arrival times* are the channel
    timestamps, observed through the context's own clock after each
    dequeue.  The context may run arbitrarily far ahead of the inference
    context thanks to asynchronous distributed time.
    """

    def __init__(
        self,
        inp: Receiver,
        out: Sender,
        max_batch: int,
        timeout: Time,
        name: str | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        super().__init__(name=name or "batcher")
        self.inp = inp
        self.out = out
        self.max_batch = max_batch
        self.timeout = timeout
        self.register(inp, out)

    def run(self):
        pending = 0
        deadline: Time | None = None
        while True:
            try:
                # Peek first: observing the next arrival advances our
                # clock to it WITHOUT consuming, so we can decide whether
                # it belongs to this batch or the next.
                yield self.inp.peek()
            except ChannelClosed:
                if pending:
                    yield self.out.enqueue(BatchRecord(deadline, pending))
                return
            arrival = self.time.now()
            if pending and arrival > deadline:
                # The batch timed out before this arrival: launch it at
                # the deadline (carried as data; our clock is already
                # past it, which is fine — the inference context lags).
                yield self.out.enqueue(BatchRecord(deadline, pending))
                pending = 0
                deadline = None
            yield self.inp.dequeue()
            pending += 1
            if pending == 1:
                deadline = arrival + self.timeout
            if pending == self.max_batch:
                yield self.out.enqueue(BatchRecord(arrival, pending))
                pending = 0
                deadline = None


class InferenceContext(Context):
    """Re-enacts batch launches on its own (lagging) clock.

    For each record it advances to the launch time, charges the inference
    duration, and emits a completion carrying (completion_time, size) —
    the timestamps downstream consumers would see from real hardware.
    """

    def __init__(
        self,
        inp: Receiver,
        out: Sender,
        cycles_per_batch: Time,
        cycles_per_item: Time = 0,
        name: str | None = None,
    ):
        super().__init__(name=name or "inference")
        self.inp = inp
        self.out = out
        self.cycles_per_batch = cycles_per_batch
        self.cycles_per_item = cycles_per_item
        self.completions: list[tuple[Time, int]] = []
        self.register(inp, out)

    def run(self):
        try:
            while True:
                record = yield self.inp.dequeue()
                yield AdvanceTo(record.launch_time)
                yield IncrCycles(
                    self.cycles_per_batch + self.cycles_per_item * record.size
                )
                completion = (self.time.now(), record.size)
                self.completions.append(completion)
                yield self.out.enqueue(completion)
        except ChannelClosed:
            return


def poisson_arrivals(count: int, mean_gap: float, seed: int = 0) -> list[int]:
    """Integer inter-arrival gaps with an exponential distribution.

    Feed through :class:`repro.contexts.source.IterableSource` by
    converting gaps into per-item initiation intervals, or use
    :class:`RequestSource` below.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_gap, size=count)
    return [max(1, int(round(gap))) for gap in gaps]


class RequestSource(Context):
    """Emits ``count`` requests with the given inter-arrival gaps."""

    def __init__(self, out: Sender, gaps: list[int], name: str | None = None):
        super().__init__(name=name or "requests")
        self.out = out
        self.gaps = gaps
        self.register(out)

    def run(self):
        for index, gap in enumerate(self.gaps):
            yield IncrCycles(gap)
            yield self.out.enqueue(index)
