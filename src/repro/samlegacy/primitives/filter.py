"""Legacy ValDrop: cycle-based zero filtering."""

from __future__ import annotations

from ...cyclesim.channel import CycleChannel
from ...sam.token import DONE, Stop
from ..base import LegacySamPrimitive


class LegacyValDrop(LegacySamPrimitive):
    def __init__(
        self,
        in_val: CycleChannel,
        out_val: CycleChannel,
        name: str | None = None,
        ii: int = 1,
    ):
        super().__init__(name=name, ii=ii)
        self.in_val = in_val
        self.out_val = out_val

    def tick(self, cycle: int) -> None:
        if self.finished or self.stalled():
            return
        if not self.in_val.can_pop():
            return
        token = self.in_val.front()
        if token is DONE:
            if self.out_val.can_push():
                self.in_val.pop()
                self.out_val.push(DONE)
                self.finished = True
            return
        if isinstance(token, Stop):
            if self.out_val.can_push():
                self.in_val.pop()
                self.out_val.push(token)
            return
        if token == 0.0:
            self.in_val.pop()  # dropped values need no output space
            self.charge()
            return
        if self.out_val.can_push():
            self.in_val.pop()
            self.out_val.push(token)
            self.charge()
