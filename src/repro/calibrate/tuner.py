"""A small autotuner: random search, hill climbing, simulated annealing.

OpenTuner's core idea is an ensemble of search techniques sharing one
result database; this miniature keeps that structure (phases sharing a
best-so-far) at a fraction of the machinery.  The interface is a plain
objective function over named integer parameters.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass(frozen=True)
class IntParameter:
    """A tunable integer in [lo, hi]."""

    name: str
    lo: int
    hi: int

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)

    def neighbor(self, value: int, rng: random.Random, radius: int = 1) -> int:
        step = rng.randint(-radius, radius)
        return min(self.hi, max(self.lo, value + step))


@dataclass
class TuningResult:
    """The outcome of a tuning run."""

    best_params: dict[str, int]
    best_error: float
    evaluations: int
    #: best-error-so-far after each evaluation (the Fig. 10 series).
    history: list[float] = field(default_factory=list)

    def converged_at(self, threshold: float) -> int | None:
        """First evaluation index where the error dropped below threshold."""
        for index, error in enumerate(self.history):
            if error <= threshold:
                return index
        return None


class Autotuner:
    """Minimize ``objective(params)`` over integer parameters.

    Phases: (1) pure random exploration, (2) hill climbing around the
    incumbent, (3) simulated annealing to escape local minima.  The phase
    budget split follows OpenTuner's default bias toward exploitation.
    """

    def __init__(
        self,
        parameters: Sequence[IntParameter],
        objective: Callable[[dict[str, int]], float],
        seed: int = 0,
    ):
        if not parameters:
            raise ValueError("need at least one parameter")
        self.parameters = list(parameters)
        self.objective = objective
        self.rng = random.Random(seed)
        self._cache: dict[tuple[int, ...], float] = {}

    def _key(self, params: dict[str, int]) -> tuple[int, ...]:
        return tuple(params[p.name] for p in self.parameters)

    def _evaluate(self, params: dict[str, int]) -> float:
        key = self._key(params)
        if key not in self._cache:
            self._cache[key] = self.objective(params)
        return self._cache[key]

    def tune(self, iterations: int = 300, target_error: float = 0.0) -> TuningResult:
        rng = self.rng
        explore = max(1, iterations // 4)
        climb = max(1, iterations // 2)
        anneal = max(0, iterations - explore - climb)

        best_params = {p.name: p.sample(rng) for p in self.parameters}
        best_error = self._evaluate(best_params)
        history = [best_error]
        evaluations = 1

        def record(params: dict[str, int], error: float) -> None:
            nonlocal best_params, best_error
            if error < best_error:
                best_error = error
                best_params = dict(params)
            history.append(best_error)

        # Phase 1: random exploration.
        for _ in range(explore):
            if best_error <= target_error:
                break
            candidate = {p.name: p.sample(rng) for p in self.parameters}
            record(candidate, self._evaluate(candidate))
            evaluations += 1

        # Phase 2: hill climbing around the incumbent.
        for _ in range(climb):
            if best_error <= target_error:
                break
            candidate = {
                p.name: p.neighbor(best_params[p.name], rng)
                for p in self.parameters
            }
            record(candidate, self._evaluate(candidate))
            evaluations += 1

        # Phase 3: simulated annealing from the incumbent.
        current = dict(best_params)
        current_error = best_error
        for step in range(anneal):
            if best_error <= target_error:
                break
            temperature = max(1e-6, 1.0 - step / max(anneal, 1))
            candidate = {
                p.name: p.neighbor(current[p.name], rng, radius=2)
                for p in self.parameters
            }
            error = self._evaluate(candidate)
            evaluations += 1
            accept = error < current_error or rng.random() < math.exp(
                -(error - current_error) / (temperature * 10.0)
            )
            if accept:
                current, current_error = candidate, error
            record(candidate, error)

        return TuningResult(
            best_params=best_params,
            best_error=best_error,
            evaluations=evaluations,
            history=history,
        )
