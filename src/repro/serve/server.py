"""The asyncio front end: simulation-as-a-service.

One :class:`SimServer` accepts HTTP requests over plain asyncio streams
(stdlib only — no web framework):

``POST /run``
    Body: ``{"spec": <ProgramSpec wire dict>, "tenant": "...",
    "request_id": "...", "stream_metrics_s": <float|null>,
    "return_result": <bool>}``.  The response is a newline-delimited
    JSON event stream (``application/x-ndjson``, connection closed at
    the end): an ``accepted`` event, zero or more live ``sample``
    events when metric streaming was requested, then exactly one
    ``summary`` or ``error`` event.  Admission failures are shed
    *before* acceptance with typed HTTP errors (429 + the
    :class:`AdmissionError`/:class:`TenantBudgetError` wire form);
    malformed specs get 400 + the :class:`SpecError` wire form.

``GET /metrics``
    The server's live :class:`~repro.obs.MetricsRegistry` snapshot plus
    plan-cache, tenant-ledger, and pool state — the obs registry as a
    service endpoint.

``GET /healthz``
    ``{"ok": true}`` while the loop is responsive.

Request lifecycle: tenant admission (:mod:`.tenants`) → pool admission
(:mod:`.pool`) → coalescing (identical in-flight payloads share one
execution) → plan-cache lookup (:mod:`.plancache`) → ``spec.build()``
and ``Program.run`` on a pool thread with the tenant-clamped config and
a ``tenant/request_id`` tag stamped on the summary.  Every simulated
result is bit-identical to a direct in-process ``Program.run`` of the
same spec — the server adds scheduling, never semantics.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.errors import DamError
from ..obs import MetricsRegistry
from ..sam.spec import ProgramSpec, SpecError
from .errors import AdmissionError, ServeError
from .plancache import PlanCache
from .pool import RunPool
from .tenants import TenantLedger, TenantPolicy

#: Largest accepted request body (tensor payloads are lists of floats;
#: 256 MiB of JSON is far beyond any sane simulation request).
MAX_BODY_BYTES = 256 * 1024 * 1024


@dataclass
class ServeConfig:
    """Server tunables; every field has a production-safe default."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Concurrent run slots (pool threads; each may fork sim workers).
    max_concurrent: int = 2
    #: Requests allowed to wait beyond the running slots before shedding.
    queue_limit: int = 8
    plan_cache_entries: int = 128
    #: Persist the plan cache here: loaded (if present) at construction,
    #: saved on shutdown — warm plans survive server restarts.
    plan_cache_path: Optional[str] = None
    #: Per-tenant policies; unknown tenants fall back to ``default_policy``.
    tenants: dict[str, TenantPolicy] = field(default_factory=dict)
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    #: Forced executor override for every request (``None`` = the spec's).
    executor_override: Optional[str] = None


class SimServer:
    """A multi-tenant simulation run server over one asyncio loop."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.metrics = MetricsRegistry()
        self.plan_cache = PlanCache(self.config.plan_cache_entries)
        path = self.config.plan_cache_path
        if path and os.path.exists(path):
            self.plan_cache.load_json(path)
        self.tenants = TenantLedger(
            self.config.tenants, default=self.config.default_policy
        )
        self.pool = RunPool(self.config.max_concurrent, self.config.queue_limit)
        #: payload_key → Future resolving to the leader's outcome dict.
        self._inflight: dict[str, asyncio.Future] = {}
        self._request_ids = itertools.count(1)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.Task] = set()
        #: Set at shutdown: idle keep-alive connections stop waiting for
        #: a next request and close (in-flight requests still drain).
        self._closing = asyncio.Event()
        self.address: Optional[tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Stop accepting, drain open connections, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._closing.set()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        # The pool threads only run jobs the drained connections already
        # awaited, so a blocking join here is bounded and keeps "no
        # leaked processes" checkable the instant shutdown returns.
        await asyncio.get_running_loop().run_in_executor(
            None, self.pool.shutdown
        )
        if self.config.plan_cache_path:
            self.plan_cache.save_json(self.config.plan_cache_path)

    # ------------------------------------------------------------------
    # Connection handling (minimal HTTP/1.1 over asyncio streams).
    # ------------------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._handle_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-stream; nothing to clean up
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_connection(self, reader, writer) -> None:
        # Keep-alive loop: Content-Length-framed responses (the GETs and
        # every error) leave the connection open for the next request;
        # ``POST /run`` streams ndjson to EOF and therefore always
        # closes (the stream has no length to frame).
        while True:
            read_task = asyncio.ensure_future(reader.readline())
            close_task = asyncio.ensure_future(self._closing.wait())
            done, _pending = await asyncio.wait(
                {read_task, close_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if read_task not in done:
                # Shutdown while idle between requests: hang up.
                read_task.cancel()
                return
            close_task.cancel()
            request_line = read_task.result().decode("latin-1").strip()
            if not request_line:
                return
            try:
                method, path, _version = request_line.split(" ", 2)
            except ValueError:
                await _respond_json(
                    writer, 400, {"error": "malformed request line"},
                    close=True,
                )
                return
            headers: dict[str, str] = {}
            while True:
                line = (await reader.readline()).decode("latin-1")
                if line in ("\r\n", "\n", ""):
                    break
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            close = headers.get("connection", "").lower() == "close"
            length = int(headers.get("content-length", 0) or 0)
            if length > MAX_BODY_BYTES:
                await _respond_json(
                    writer, 413, {"error": "request body too large"},
                    close=True,
                )
                return
            body = await reader.readexactly(length) if length else b""

            if method == "GET" and path == "/metrics":
                await _respond_json(
                    writer, 200, self.metrics_payload(), close=close
                )
            elif method == "GET" and path == "/healthz":
                await _respond_json(writer, 200, {"ok": True}, close=close)
            elif method == "POST" and path == "/run":
                await self._handle_run(body, writer)
                return
            else:
                await _respond_json(
                    writer, 404,
                    {"error": f"no route for {method} {path}"},
                    close=close,
                )
            if close:
                return

    def metrics_payload(self) -> dict[str, Any]:
        return {
            "metrics": self.metrics.snapshot(),
            "plan_cache": self.plan_cache.snapshot(),
            "tenants": self.tenants.snapshot(),
            "pool": self.pool.snapshot(),
        }

    # ------------------------------------------------------------------
    # The run endpoint.
    # ------------------------------------------------------------------

    async def _handle_run(self, body: bytes, writer) -> None:
        try:
            envelope = json.loads(body or b"{}")
            if not isinstance(envelope, dict) or "spec" not in envelope:
                raise SpecError("request body must be {'spec': {...}, ...}")
            spec = ProgramSpec.from_dict(envelope["spec"])
            # Validate the config at the boundary: strict unknown-field
            # errors belong in the 400, not in a pool thread's traceback.
            spec.run_config()
        except (SpecError, ValueError, TypeError, json.JSONDecodeError) as exc:
            self.metrics.counter("requests_rejected").inc()
            wire = exc.to_wire() if isinstance(exc, ServeError) else {
                "type": type(exc).__name__,
                "message": str(exc),
            }
            await _respond_json(writer, 400, {"error": wire})
            return

        tenant = str(envelope.get("tenant", "default"))
        request_id = str(
            envelope.get("request_id") or f"req-{next(self._request_ids)}"
        )
        self.metrics.counter("requests_total", tenant=tenant).inc()

        # --- admission: tenant budget first, then the shared queue -----
        try:
            policy = self.tenants.admit(tenant)
        except AdmissionError as exc:
            self.metrics.counter("requests_shed", tenant=tenant).inc()
            self.metrics.counter("tenant_rejections", tenant=tenant).inc()
            await _respond_json(writer, exc.http_status, {"error": exc.to_wire()})
            return

        key = spec.payload_key()
        leader = self._inflight.get(key)
        if leader is None:
            try:
                self.pool.try_acquire()
            except AdmissionError as exc:
                self.tenants.release(tenant)
                self.metrics.counter("requests_shed", tenant=tenant).inc()
                await _respond_json(
                    writer, exc.http_status, {"error": exc.to_wire()}
                )
                return
            await self._lead_run(
                spec, envelope, tenant, policy, request_id, key, writer
            )
        else:
            self.metrics.counter("coalesced_requests", tenant=tenant).inc()
            await self._follow_run(leader, tenant, request_id, writer)

    async def _lead_run(
        self, spec, envelope, tenant, policy, request_id, key, writer
    ) -> None:
        """Execute the spec on the pool and stream events; publish the
        outcome to any coalesced followers."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        samples: asyncio.Queue = asyncio.Queue()
        tag = f"{tenant}/{request_id}"
        stream_metrics_s = envelope.get("stream_metrics_s")
        return_result = bool(envelope.get("return_result", True))

        def push_sample(sample: dict) -> None:
            # Called from the MetricsSampler thread inside the run.
            loop.call_soon_threadsafe(samples.put_nowait, sample)

        job = _RunJob(
            server=self,
            spec=spec,
            policy=policy,
            tag=tag,
            metrics_interval_s=stream_metrics_s,
            metrics_sink=push_sample if stream_metrics_s else None,
            return_result=return_result,
        )

        await _start_ndjson(writer)
        await _write_event(
            writer,
            {
                "event": "accepted",
                "request_id": request_id,
                "tenant": tenant,
                "role": "leader",
            },
        )

        started = time.perf_counter()
        run_task = asyncio.ensure_future(self.pool.run(job))
        try:
            while True:
                sample_task = asyncio.ensure_future(samples.get())
                done, _pending = await asyncio.wait(
                    {run_task, sample_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if sample_task in done:
                    await _write_event(
                        writer,
                        {"event": "sample", "sample": sample_task.result()},
                    )
                else:
                    sample_task.cancel()
                if run_task in done:
                    break
            # Flush samples that beat the summary to the queue.
            while not samples.empty():
                await _write_event(
                    writer, {"event": "sample", "sample": samples.get_nowait()}
                )
            try:
                outcome = run_task.result()
            except Exception as exc:  # simulation/host failure → event
                outcome = {"error": _error_wire(exc)}
            elapsed = time.perf_counter() - started
            outcome.setdefault("request_id", request_id)
            if "error" in outcome:
                self.metrics.counter("runs_failed", tenant=tenant).inc()
                await _write_event(
                    writer, {"event": "error", **outcome}
                )
            else:
                self.metrics.counter("runs_ok", tenant=tenant).inc()
                self.metrics.histogram("run_seconds", tenant=tenant).observe(
                    elapsed
                )
                await _write_event(writer, {"event": "summary", **outcome})
        finally:
            elapsed = time.perf_counter() - started
            self._inflight.pop(key, None)
            self.pool.release()
            self.tenants.release(tenant, seconds=elapsed)
            if not future.done():
                if run_task.done() and run_task.exception() is not None:
                    future.set_exception(run_task.exception())
                    # Followers consume it; silence "never retrieved".
                    future.exception()
                elif run_task.done():
                    future.set_result(run_task.result())
                else:  # pragma: no cover - cancelled mid-write
                    future.cancel()

    async def _follow_run(self, leader, tenant, request_id, writer) -> None:
        """A coalesced request: await the leader's outcome, charging this
        tenant nothing — the compute already happened once."""
        await _start_ndjson(writer)
        await _write_event(
            writer,
            {
                "event": "accepted",
                "request_id": request_id,
                "tenant": tenant,
                "role": "follower",
            },
        )
        try:
            outcome = await asyncio.shield(leader)
        except Exception as exc:
            self.metrics.counter("runs_failed", tenant=tenant).inc()
            await _write_event(
                writer,
                {"event": "error", "error": _error_wire(exc), "request_id": request_id},
            )
        else:
            self.metrics.counter("runs_ok", tenant=tenant).inc()
            payload = dict(outcome)
            payload["request_id"] = request_id
            payload["coalesced"] = True
            await _write_event(writer, {"event": "summary", **payload})
        finally:
            self.tenants.release(tenant, seconds=0.0)


class _RunJob:
    """The synchronous build-and-run job executed on a pool thread."""

    def __init__(
        self,
        server: SimServer,
        spec: ProgramSpec,
        policy: TenantPolicy,
        tag: str,
        metrics_interval_s: Optional[float],
        metrics_sink,
        return_result: bool,
    ):
        self.server = server
        self.spec = spec
        self.policy = policy
        self.tag = tag
        self.metrics_interval_s = metrics_interval_s
        self.metrics_sink = metrics_sink
        self.return_result = return_result

    def __call__(self) -> dict[str, Any]:
        from ..sam.spec import encode_tensor

        spec = self.spec
        executor = (
            self.server.config.executor_override or spec.executor
        )
        built = spec.build()
        program = built.program if hasattr(built, "program") else built

        config = self.policy.clamp(spec.run_config()).replace(tag=self.tag)
        if self.metrics_interval_s:
            config = config.replace(
                metrics_interval_s=float(self.metrics_interval_s),
                metrics_sink=self.metrics_sink,
            )

        plan_key = PlanCache.key_for(spec.shape_key(), executor, config.workers)
        plan = self.server.plan_cache.lookup(plan_key)
        if plan is not None:
            config = plan.apply(program, config)
        self.server.metrics.counter(
            "plan_cache_hits" if plan is not None else "plan_cache_misses"
        ).inc()

        summary = program.run(executor, config=config)
        if plan is None:
            self.server.plan_cache.learn(plan_key, program, summary)

        outcome: dict[str, Any] = {
            "summary": summary.to_dict(),
            "plan": "hit" if plan is not None else "miss",
        }
        if self.return_result and hasattr(built, "result_dense"):
            outcome["result"] = encode_tensor(built.result_dense())
        return outcome


def _error_wire(exc: BaseException) -> dict[str, Any]:
    if isinstance(exc, ServeError):
        return exc.to_wire()
    if isinstance(exc, (DamError, SpecError)):
        return {"type": type(exc).__name__, "message": str(exc)}
    return {"type": type(exc).__name__, "message": repr(exc)}


# ----------------------------------------------------------------------
# HTTP plumbing.
# ----------------------------------------------------------------------

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


async def _respond_json(
    writer, status: int, payload: dict[str, Any], close: bool = True
) -> None:
    body = json.dumps(payload).encode()
    connection = "close" if close else "keep-alive"
    writer.write(
        (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        ).encode()
    )
    writer.write(body)
    await writer.drain()


async def _start_ndjson(writer) -> None:
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Connection: close\r\n\r\n"
    )
    await writer.drain()


async def _write_event(writer, event: dict[str, Any]) -> None:
    writer.write(json.dumps(event).encode() + b"\n")
    await writer.drain()


# ----------------------------------------------------------------------
# Embedding helpers.
# ----------------------------------------------------------------------


class ServerHandle:
    """A running server on a background thread (tests, notebooks)."""

    def __init__(self, server: SimServer, loop, thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def address(self) -> tuple[str, int]:
        assert self.server.address is not None
        return self.server.address

    def stop(self, timeout: float = 30.0) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        )
        future.result(timeout)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout)


def start_in_thread(config: Optional[ServeConfig] = None) -> ServerHandle:
    """Start a :class:`SimServer` on a fresh event loop in a daemon
    thread and return a handle with its bound address."""
    started = threading.Event()
    holder: dict[str, Any] = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = SimServer(config)
        loop.run_until_complete(server.start())
        holder["server"] = server
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(
        target=runner, name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=30.0):  # pragma: no cover - startup hang
        raise RuntimeError("serve thread failed to start")
    return ServerHandle(holder["server"], holder["loop"], thread)


def serve(config: Optional[ServeConfig] = None, **overrides: Any) -> None:
    """Run a server in the foreground until interrupted (the CLI path).

    ``overrides`` are :class:`ServeConfig` fields applied on top of
    ``config`` — ``serve(port=8750, max_concurrent=4)`` just works.
    """
    import dataclasses

    config = config or ServeConfig()
    if overrides:
        config = dataclasses.replace(config, **overrides)

    async def main() -> None:
        server = SimServer(config)
        host, port = await server.start()
        print(f"repro.serve listening on http://{host}:{port}", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            pass
        finally:
            await server.shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
