"""Stream sources: the entry points of a SAM graph."""

from __future__ import annotations

from typing import Any, Iterable

from ...core.channel import Sender
from ...core.ops import FusedOps
from ..token import DONE
from .base import SamContext, TimingParams


class RootSource(SamContext):
    """Emits the canonical root reference stream ``[0, D]``.

    Every SAM kernel starts by scanning the outermost level of each input
    tensor from the root fiber reference 0.
    """

    checkpoint_attrs = ("_phase",)

    def __init__(
        self,
        out: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.out = out
        self._phase = 0
        self.register(out)

    def run(self):
        if self._phase == 0:
            yield self.out.enqueue(0)
            self._phase = 1
        if self._phase == 1:
            yield self.tick()
            self._phase = 2
        if self._phase == 2:
            yield self.out.enqueue(DONE)
            self._phase = 3


class StreamSource(SamContext):
    """Emits an explicit token list (tests, handcrafted workloads).

    The caller is responsible for the list being a well-formed SAM stream
    (ending with ``DONE``); :func:`repro.sam.token.is_control` helpers and
    the stream well-formedness tests cover this.
    """

    checkpoint_attrs = ("_index",)

    def __init__(
        self,
        out: Sender,
        tokens: Iterable[Any],
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.out = out
        self.tokens = list(tokens)
        self._index = 0
        self.register(out)

    def run(self):
        enq = self.out.enqueue(None)
        step = FusedOps(enq, self.tick())
        while self._index < len(self.tokens):
            enq.data = self.tokens[self._index]
            yield step
            self._index += 1
