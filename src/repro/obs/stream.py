"""Live metric streaming: periodic read-only snapshots during a run.

``RunConfig(metrics_interval_s=...)`` makes an executor start a
:class:`MetricsSampler` for the duration of the run.  A daemon thread
wakes every ``interval_s`` wall-clock seconds, calls the executor's
*probe* (a closure reading context clocks, op counters, and — when
metrics are enabled — the :class:`~repro.obs.metrics.MetricsRegistry`),
and hands each sample to a *sink*: a user callback, a JSONL file path,
or (always) the sampler's own ``samples`` list.

The safety argument for not perturbing SVA: the sampler only *reads*
published state — time cells, counters, shared-memory clock slots — and
never takes a lock the run's threads contend on, never touches channel
state, and never advances a clock.  Simulated behaviour is a pure
function of simulated state, so a concurrent reader cannot change
``finish_time`` or the trace (asserted by the sampled leg of the
cross-executor matrix).  Samples themselves are wall-clock artifacts and
naturally vary run to run; everything *simulated* stays bit-identical.

``stop()`` always takes one final sample before returning, so even a
run shorter than the interval yields at least one snapshot — the
deterministic hook tests and the future serve layer's ``/metrics``
endpoint rely on.
"""

from __future__ import annotations

import json
import threading
import time as _time
from pathlib import Path
from typing import Any, Callable

Probe = Callable[[], dict[str, Any]]
Sink = "Callable[[dict[str, Any]], Any] | str | Path | None"


class MetricsSampler:
    """Periodically snapshot a probe to a callback / JSONL sink.

    ``probe`` must be cheap and read-only; it is called from the sampler
    thread while the run is in flight.  Exceptions from the probe or the
    sink are swallowed after recording (observability must never take a
    run down), and surface in ``errors`` for tests.
    """

    def __init__(
        self,
        interval_s: float,
        probe: Probe,
        sink: Any = None,
        clock: Callable[[], float] = _time.monotonic,
    ):
        if interval_s <= 0:
            raise ValueError(f"metrics_interval_s must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self.probe = probe
        self.samples: list[dict[str, Any]] = []
        self.errors: list[str] = []
        self._clock = clock
        self._callback: Callable[[dict[str, Any]], Any] | None = None
        self._path: Path | None = None
        if callable(sink):
            self._callback = sink
        elif sink is not None:
            self._path = Path(sink)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._file = None
        self._start_wall: float = 0.0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "MetricsSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        if self._path is not None:
            self._file = open(self._path, "a", encoding="utf-8")
        self._start_wall = self._clock()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="metrics-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> list[dict[str, Any]]:
        """Stop the thread, take one final sample, return all samples."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        self._sample()
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None
        return self.samples

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample()

    def _sample(self) -> None:
        try:
            snapshot = self.probe()
        except Exception as exc:  # noqa: BLE001 - observability must not raise
            self.errors.append(f"probe: {exc!r}")
            return
        sample = {
            "seq": len(self.samples),
            "wall_s": round(self._clock() - self._start_wall, 6),
        }
        sample.update(snapshot)
        self.samples.append(sample)
        if self._callback is not None:
            try:
                self._callback(sample)
            except Exception as exc:  # noqa: BLE001
                self.errors.append(f"sink: {exc!r}")
        if self._file is not None:
            try:
                self._file.write(json.dumps(sample, default=str) + "\n")
                self._file.flush()
            except Exception as exc:  # noqa: BLE001
                self.errors.append(f"sink: {exc!r}")
