"""The original-SAM-style cycle-based simulator (the Fig. 7/8 baseline).

The paper's second case study replaces a hand-written, single-threaded,
cycle-by-cycle Python simulator for the SAM CGRA.  This package recreates
that baseline faithfully: every primitive is a
:class:`~repro.cyclesim.component.CycleComponent` whose ``tick`` runs once
per simulated cycle and whose inter-cycle state is managed by hand —
explicit state constants, cooldown counters, partially-emitted fibers, and
completion flags.  (Compare any module here with its CSPT counterpart in
:mod:`repro.sam.primitives`; the Fig. 7 benchmark counts the difference.)

Stream semantics are identical to :mod:`repro.sam` — the integration tests
run the same kernels on both simulators and require matching outputs.
"""

from .graphs import (
    build_legacy_mmadd,
    build_legacy_sddmm,
    build_legacy_sparse_mha,
    build_legacy_spmspm,
)

__all__ = [
    "build_legacy_mmadd",
    "build_legacy_spmspm",
    "build_legacy_sddmm",
    "build_legacy_sparse_mha",
]
