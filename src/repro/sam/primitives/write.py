"""Stream terminators: fiber/value writers and the raw stream sink.

Writers materialize output streams back into tensor storage: FiberWrite
builds a :class:`~repro.sam.tensor.CompressedLevel` from a coordinate
stream, ValsWrite collects the values array.  StreamSink records raw
tokens (used heavily by the primitive-level tests).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...core.channel import Receiver
from ..tensor import CompressedLevel
from ..token import DONE, Stop
from .base import SamContext, TimingParams


class FiberWrite(SamContext):
    """Build seg/crd arrays from a coordinate stream.

    Every stop closes one fiber at this level (higher stop levels close
    ancestors, which their own writers observe through their own streams).
    After the run, :meth:`to_level` returns the compressed level.
    """

    def __init__(
        self,
        in_crd: Receiver,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_crd = in_crd
        self.seg: list[int] = [0]
        self.crd: list[int] = []
        self.register(in_crd)

    def run(self):
        while True:
            token = yield self.in_crd.dequeue()
            if token is DONE:
                return
            if isinstance(token, Stop):
                self.seg.append(len(self.crd))
                yield self.tick_control()
            else:
                self.crd.append(token)
                yield self.tick()

    def to_level(self) -> CompressedLevel:
        return CompressedLevel(self.seg, self.crd)


class ValsWrite(SamContext):
    """Collect a value stream's payloads into a numpy array."""

    def __init__(
        self,
        in_val: Receiver,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.in_val = in_val
        self.vals: list[float] = []
        self.register(in_val)

    def run(self):
        while True:
            token = yield self.in_val.dequeue()
            if token is DONE:
                return
            if isinstance(token, Stop):
                yield self.tick_control()
            else:
                self.vals.append(token)
                yield self.tick()

    def to_array(self) -> np.ndarray:
        return np.array(self.vals, dtype=np.float64)


class StreamSink(SamContext):
    """Record every token of a stream verbatim (including controls)."""

    def __init__(
        self,
        inp: Receiver,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.inp = inp
        self.tokens: list[Any] = []
        self.register(inp)

    def run(self):
        while True:
            token = yield self.inp.dequeue()
            self.tokens.append(token)
            if token is DONE:
                return
            yield self.tick()
