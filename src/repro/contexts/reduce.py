"""Reduction contexts: streaming reducers and tree nodes (Fig. 3 workload)."""

from __future__ import annotations

from typing import Any, Callable

from ..core.channel import Receiver, Sender
from ..core.context import Context, UNSET
from ..core.errors import ChannelClosed
from ..core.ops import IncrCycles
from ..core.time import Time


class ReduceNode(Context):
    """A binary tree node: combine one element from each child per firing.

    This is the unit of the paper's DAM-vs-SST microbenchmark: a binary
    reduction tree whose nodes combine their children's values and
    optionally perform extra work per firing (``work_fn``, the naive
    Fibonacci in Section VI-B).
    """

    checkpoint_attrs = ("_phase", "_a", "_b")

    def __init__(
        self,
        left: Receiver,
        right: Receiver,
        out: Sender,
        combine: Callable[[Any, Any], Any],
        work_fn: Callable[[], Any] | None = None,
        ii: Time = 1,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.left = left
        self.right = right
        self.out = out
        self.combine = combine
        self.work_fn = work_fn
        self.ii = ii
        self._phase = 0  # 0=dequeue left, 1=dequeue right, 2=tick, 3=emit
        self._a = UNSET
        self._b = UNSET
        self.register(left, right, out)

    def run(self):
        combine = self.combine
        work_fn = self.work_fn
        try:
            while True:
                if self._phase == 0:
                    self._a = yield self.left.dequeue()
                    self._phase = 1
                if self._phase == 1:
                    self._b = yield self.right.dequeue()
                    self._phase = 2
                if self._phase == 2:
                    yield IncrCycles(self.ii)
                    self._phase = 3
                if self._phase == 3:
                    result = combine(self._a, self._b)
                    if work_fn is not None:
                        result = result + work_fn() * 0  # timed, not valued
                    yield self.out.enqueue(result)
                    self._phase = 0
        except ChannelClosed:
            return


class StreamReducer(Context):
    """Reduce fixed-size groups of a stream to single values.

    Consumes ``group`` consecutive elements, emits their reduction, and
    repeats until the input closes.  ``group=None`` reduces the entire
    stream to one value at close.
    """

    checkpoint_attrs = ("_acc", "_saw_any", "_count", "_phase", "_closed", "_pending")

    def __init__(
        self,
        inp: Receiver,
        out: Sender,
        combine: Callable[[Any, Any], Any],
        group: int | None = None,
        initial: Any = None,
        ii: Time = 1,
        name: str | None = None,
    ):
        if group is not None and group < 1:
            raise ValueError("group must be >= 1")
        super().__init__(name=name)
        self.inp = inp
        self.out = out
        self.combine = combine
        self.group = group
        self.initial = initial
        self.ii = ii
        self._acc = initial
        self._saw_any = False
        self._count = 0  # elements consumed in the current group
        self._phase = 0  # 0=dequeue, 1=tick (fold happens on dequeue)
        self._closed = False  # input closed; the final emit is pending
        self._pending = UNSET  # dequeued value awaiting its fold (post-tick)
        self.register(inp, out)

    def run(self):
        combine = self.combine

        def fold(value):
            if not self._saw_any and self._acc is None:
                self._acc = value
            else:
                self._acc = combine(self._acc, value)
            self._saw_any = True
            self._count += 1

        if self.group is None:
            if not self._closed:
                try:
                    while True:
                        if self._phase == 0:
                            self._pending = yield self.inp.dequeue()
                            self._phase = 1
                        if self._phase == 1:
                            yield IncrCycles(self.ii)
                            fold(self._pending)
                            self._pending = UNSET
                            self._phase = 0
                except ChannelClosed:
                    self._closed = True
            if self._saw_any or self.initial is not None:
                yield self.out.enqueue(self._acc)
            return
        while True:
            while self._count < self.group:
                if self._phase == 0:
                    try:
                        self._pending = yield self.inp.dequeue()
                    except ChannelClosed:
                        if self._count:
                            raise AssertionError(
                                f"{self.name}: input closed mid-group"
                            ) from None
                        return
                    self._phase = 1
                if self._phase == 1:
                    yield IncrCycles(self.ii)
                    fold(self._pending)
                    self._pending = UNSET
                    self._phase = 0
            yield self.out.enqueue(self._acc)
            self._acc = self.initial
            self._saw_any = False
            self._count = 0
