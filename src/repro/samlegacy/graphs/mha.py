"""Legacy sparse MHA on the cycle simulator (mirror of sam.graphs.mha).

The exp-stream buffer channel has the same depth requirement as in the
DAM version; by default it is unbounded here (``softmax_depth=None``)
because the legacy engine has no deadlock detector — an undersized buffer
just stalls the cycle loop until its quiescence guard fires.
"""

from __future__ import annotations

import math

import numpy as np

from ...sam.tensor import CsfTensor, DenseLevel
from ..primitives import (
    LegacyArrayVals,
    LegacyBinaryAlu,
    LegacyBroadcast,
    LegacyCrdHold,
    LegacyFiberLookup,
    LegacyFiberWrite,
    LegacyReduce,
    LegacyRepeat,
    LegacyRepeatSigGen,
    LegacyRootSource,
    LegacySpaccV1,
    LegacyStreamSink,
    LegacyUnaryAlu,
    LegacyValsWrite,
)
from .common import DEFAULT_LEGACY_DEPTH, LegacyGraphBuilder, LegacyKernelGraph


def build_legacy_sparse_mha(
    mask: CsfTensor,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    depth: int | None = DEFAULT_LEGACY_DEPTH,
    softmax_depth: int | None = None,
    ii: int = 1,
) -> LegacyKernelGraph:
    """The cycle-based mirror of :func:`repro.sam.graphs.build_sparse_mha`."""
    heads, seq_len, _ = mask.shape
    d_model = q.shape[-1]
    scale = 1.0 / math.sqrt(d_model)
    g = LegacyGraphBuilder(depth=depth)

    root = g.ch("rootM")
    g.add(LegacyRootSource(root, name="rootM", ii=ii))
    cmh, rmh = g.ch("cMh"), g.ch("rMh")
    g.add(LegacyFiberLookup(mask.level(0), root, cmh, rmh, name="scanMh", ii=ii))
    cmi, rmi = g.ch("cMi"), g.ch("rMi")
    g.add(LegacyFiberLookup(mask.level(1), rmh, cmi, rmi, name="scanMi", ii=ii))
    cmj, rmj = g.ch("cMj"), g.ch("rMj")
    g.add(LegacyFiberLookup(mask.level(2), rmi, cmj, rmj, name="scanMj", ii=ii))
    g.add(LegacyStreamSink(rmj, name="sink_rMj", ii=ii))

    cmi_hold, cmi_elem, cmi_write = g.fanout(cmi, 3, "cMi")
    cmj_elem, cmj_krow, cmj_sig, cmj_hold2 = g.fanout(cmj, 4, "cMj")

    hi = g.ch("h_per_i")
    g.add(LegacyCrdHold(cmh, cmi_hold, hi, name="holdH", ii=ii))
    he = g.ch("h_per_elem")
    g.add(LegacyCrdHold(hi, cmj_hold2, he, name="holdH2", ii=ii))
    he_q, he_k = g.fanout(he, 2, "h_elem")
    ie = g.ch("i_per_elem")
    g.add(LegacyCrdHold(cmi_elem, cmj_elem, ie, name="holdI", ii=ii))

    rq = g.ch("rQrow")
    g.add(
        LegacyBinaryAlu(he_q, ie, rq, lambda h, i: h * seq_len + i, name="qRowRef", ii=ii)
    )
    rk = g.ch("rKrow")
    g.add(
        LegacyBinaryAlu(
            he_k, cmj_krow, rk, lambda h, j: h * seq_len + j, name="kRowRef",
            ii=ii,
        )
    )
    # The V-gather branch shares the row-buffer depth requirement (see
    # sam.graphs.mha for the structural argument).
    rk_kd, rk_vc = g.fanout(rk, 2, "rKrow", depths=["default", softmax_depth])

    cqd, rqd = g.ch("cQd"), g.ch("rQd")
    g.add(LegacyFiberLookup(DenseLevel(d_model), rq, cqd, rqd, name="scanQd", ii=ii))
    ckd, rkd = g.ch("cKd"), g.ch("rKd")
    g.add(LegacyFiberLookup(DenseLevel(d_model), rk_kd, ckd, rkd, name="scanKd", ii=ii))
    g.add(LegacyStreamSink(cqd, name="sink_cQd", ii=ii))
    g.add(LegacyStreamSink(ckd, name="sink_cKd", ii=ii))

    vq, vk = g.ch("vQ"), g.ch("vK")
    g.add(LegacyArrayVals(q.reshape(-1), rqd, vq, name="arrayQ", ii=ii))
    g.add(LegacyArrayVals(k.reshape(-1), rkd, vk, name="arrayK", ii=ii))
    vqk = g.ch("vQK")
    g.add(LegacyBinaryAlu(vq, vk, vqk, lambda x, y: x * y, name="mulQK", ii=ii))
    vdot = g.ch("vScore")
    g.add(LegacyReduce(vqk, vdot, suppress_uninhabited=True, name="reduceD", ii=ii))

    vsc = g.ch("vScaled")
    g.add(LegacyUnaryAlu(vdot, vsc, lambda x: x * scale, name="scaleALU", ii=ii))
    vexp = g.ch("vExp")
    g.add(LegacyUnaryAlu(vsc, vexp, math.exp, name="expALU", ii=ii))

    esum = g.ch("e_sum")
    ediv = g.ch("e_div", depth=softmax_depth)
    g.add(LegacyBroadcast(vexp, [esum, ediv], name="e_bcast", ii=ii))

    vsum = g.ch("vRowSum")
    g.add(LegacyReduce(esum, vsum, suppress_uninhabited=True, name="rowSum", ii=ii))
    # Shares the row-buffer depth requirement with e_div (see sam.graphs.mha).
    sigdiv = g.ch("sigDiv", depth=softmax_depth)
    g.add(LegacyRepeatSigGen(cmj_sig, sigdiv, name="repsigDiv", ii=ii))
    vsrep = g.ch("vSumRep")
    g.add(LegacyRepeat(vsum, sigdiv, vsrep, name="repeatSum", ii=ii))
    vp = g.ch("vP")
    g.add(
        LegacyBinaryAlu(
            ediv, vsrep, vp, lambda e, s: e / s if s else 0.0, name="divALU",
            ii=ii,
        )
    )

    cvc, rvc = g.ch("cVc"), g.ch("rVc")
    g.add(LegacyFiberLookup(DenseLevel(d_model), rk_vc, cvc, rvc, name="scanVc", ii=ii))
    cvc_acc, cvc_sig = g.fanout(cvc, 2, "cVc")
    vv = g.ch("vV")
    g.add(LegacyArrayVals(v.reshape(-1), rvc, vv, name="arrayV", ii=ii))

    sigp = g.ch("sigP")
    g.add(LegacyRepeatSigGen(cvc_sig, sigp, name="repsigP", ii=ii))
    vprep = g.ch("vPRep")
    g.add(LegacyRepeat(vp, sigp, vprep, name="repeatP", ii=ii))
    vpv = g.ch("vPV")
    g.add(LegacyBinaryAlu(vv, vprep, vpv, lambda x, y: x * y, name="mulPV", ii=ii))

    co, vo = g.ch("cO"), g.ch("vO")
    g.add(LegacySpaccV1(cvc_acc, vpv, co, vo, name="spaccJ", ii=ii))

    fw_i = g.add(LegacyFiberWrite(cmi_write, name="write_i", ii=ii))
    fw_c = g.add(LegacyFiberWrite(co, name="write_c", ii=ii))
    vw = g.add(LegacyValsWrite(vo, name="write_vals", ii=ii))

    def assemble(kernel: LegacyKernelGraph) -> np.ndarray:
        from ...sam.tensor import CsfTensor as _Csf

        return _Csf(
            [DenseLevel(heads), fw_i.to_level(), fw_c.to_level()],
            kernel.vals_writer.to_array(),
            (heads, seq_len, d_model),
        ).to_dense()

    return LegacyKernelGraph(
        g.engine, [fw_i, fw_c], vw, (heads, seq_len, d_model), assemble=assemble
    )
