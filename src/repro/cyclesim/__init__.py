"""A single-threaded cycle-by-cycle simulation engine.

This is the baseline execution model of Spatial's Scala simulator and of
the original SAM Python simulator: every component is ticked every cycle,
and channels are shallow registers committed at cycle boundaries.  Real
time is therefore proportional to ``simulated cycles x components``, with
no way to skip idle time — precisely the cost DAM's local time
acceleration eliminates (Fig. 5/6).

The engine is kept deliberately faithful to that style: two-phase ticks
(compute, then commit), depth-limited register channels, and a global
cycle counter.
"""

from .channel import CycleChannel
from .component import (
    CycleBinaryOp,
    CycleComponent,
    CycleSink,
    CycleSource,
    CycleUnaryOp,
)
from .engine import CycleEngine, CycleStats

__all__ = [
    "CycleChannel",
    "CycleComponent",
    "CycleSource",
    "CycleSink",
    "CycleUnaryOp",
    "CycleBinaryOp",
    "CycleEngine",
    "CycleStats",
]
