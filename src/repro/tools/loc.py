"""Lines-of-code accounting for the Fig. 7 primitive comparison.

The paper reports that re-implementing the SAM simulator on DAM used 57%
fewer lines than the original cycle-based Python simulator, illustrated
with the Repeat block.  Both implementations live in this repository
(:mod:`repro.sam.primitives` vs :mod:`repro.samlegacy.primitives`), so the
comparison is directly measurable: we count non-blank, non-comment,
non-docstring source lines.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path


def count_loc(source: str) -> int:
    """Count effective source lines: no blanks, comments, or docstrings."""
    docstring_lines: set[int] = set()
    try:
        tree = ast.parse(source)
    except SyntaxError:
        tree = None
    if tree is not None:
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                body = getattr(node, "body", [])
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)
                ):
                    expr = body[0]
                    docstring_lines.update(range(expr.lineno, expr.end_lineno + 1))
    count = 0
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or lineno in docstring_lines:
            continue
        count += 1
    return count


def count_object_loc(obj: object) -> int:
    """Effective LoC of a class/function, via its source."""
    return count_loc(inspect.getsource(obj))


def count_file_loc(path: str | Path) -> int:
    return count_loc(Path(path).read_text())


def loc_comparison() -> list[dict[str, object]]:
    """Per-primitive LoC: DAM implementation vs legacy implementation.

    Returns rows with the primitive name, both LoC counts, and the
    reduction percentage; the aggregate row reproduces Fig. 7's headline.
    """
    from ..sam import primitives as dam
    from ..samlegacy import primitives as legacy

    pairs = [
        ("FiberLookup", dam.FiberLookup, legacy.LegacyFiberLookup),
        ("ArrayVals", dam.ArrayVals, legacy.LegacyArrayVals),
        ("Repeat", dam.Repeat, legacy.LegacyRepeat),
        ("RepeatSigGen", dam.RepeatSigGen, legacy.LegacyRepeatSigGen),
        ("Intersect", dam.Intersect, legacy.LegacyIntersect),
        ("Union", dam.Union, legacy.LegacyUnion),
        ("BinaryAlu", dam.BinaryAlu, legacy.LegacyBinaryAlu),
        ("UnaryAlu", dam.UnaryAlu, legacy.LegacyUnaryAlu),
        ("Reduce", dam.Reduce, legacy.LegacyReduce),
        ("SpaccV1", dam.SpaccV1, legacy.LegacySpaccV1),
        ("CrdHold", dam.CrdHold, legacy.LegacyCrdHold),
    ]
    rows: list[dict[str, object]] = []
    total_dam = 0
    total_legacy = 0
    for name, dam_cls, legacy_cls in pairs:
        dam_loc = count_object_loc(dam_cls)
        legacy_loc = count_object_loc(legacy_cls)
        total_dam += dam_loc
        total_legacy += legacy_loc
        rows.append(
            {
                "primitive": name,
                "dam_loc": dam_loc,
                "legacy_loc": legacy_loc,
                "reduction_pct": 100.0 * (1.0 - dam_loc / legacy_loc),
            }
        )
    rows.append(
        {
            "primitive": "TOTAL",
            "dam_loc": total_dam,
            "legacy_loc": total_legacy,
            "reduction_pct": 100.0 * (1.0 - total_dam / total_legacy),
        }
    )
    return rows
