"""Fig. 10 — automated calibration: cycle error vs tuning iterations.

Paper: OpenTuner over SAM-on-DAM timing parameters against RTL traces —
3000 iterations, converged ~2700, final average error ~0.8 cycles
(~0.3%), whole process minutes thanks to the fast simulator.

Reproduction: the "RTL" traces come from hidden-parameter runs of the
same kernels (DESIGN.md substitution); the tuner is the random/hill-
climb/annealing ensemble in :mod:`repro.calibrate`.  The series below is
best-error-so-far per evaluation — the Fig. 10 curve.
"""

from conftest import report

from repro.bench import TextTable
from repro.calibrate import Autotuner, SamTimingProblem, make_reference_traces
from repro.calibrate.problem import PARAMETER_SPACE

HIDDEN = {"ii": 3, "stop_bubble": 4, "latency": 2}
ITERATIONS = 150


def run_calibration(seed=3):
    traces = make_reference_traces(HIDDEN)
    problem = SamTimingProblem(traces)
    tuner = Autotuner(PARAMETER_SPACE, problem, seed=seed)
    return tuner.tune(iterations=ITERATIONS, target_error=0.0), problem


def test_fig10_calibration_converges(benchmark):
    result, problem = benchmark.pedantic(run_calibration, rounds=1, iterations=1)

    table = TextTable(
        ["evaluation", "best_error_cycles"],
        title=(
            "Fig. 10: calibration error vs iterations\n"
            f"paper: ~0.8 cycles after ~2700 of 3000 iters; hidden={HIDDEN}"
        ),
    )
    checkpoints = sorted(
        {0, 1, 2, 5, 10, 20, 40, 80, len(result.history) - 1}
    )
    for checkpoint in checkpoints:
        if checkpoint < len(result.history):
            table.add_row(checkpoint, result.history[checkpoint])
    table.add_row("BEST PARAMS", str(result.best_params))
    table.add_row("CONVERGED AT (<=1 cycle)", result.converged_at(1.0))
    report("fig10_calibration", table.render())

    # The paper's claim, in shape: sub-cycle average error is reached and
    # the recovered parameters match the "RTL" ground truth.
    assert result.best_error <= 1.0
    assert result.best_params == HIDDEN
    # Convergence: monotone non-increasing best-so-far curve.
    assert all(
        later <= earlier
        for earlier, later in zip(result.history, result.history[1:])
    )
