"""Runtime sparsity guarantees: the excess-nonzero limiter.

Section VIII-A1 observes that random sparsity makes channel provisioning
*stochastic*: a length-64 fiber at 10% density expects <7 nonzeros, but
has a 0.5% chance of exceeding 16 — so a depth-16 buffer deadlocks the
system "after only a few thousand iterations".  The paper proposes
"runtime sparsity guarantees, such as a unit which drops excess
nonzeros", and leaves it as future work.  This module implements it.

:class:`NonzeroLimiter` caps every innermost fiber of an aligned
(crd, val) stream pair at ``max_nonzeros`` elements, dropping the rest.
Two policies:

* ``"tail"`` — keep the first ``max_nonzeros`` (cheapest hardware: a
  counter and a gate);
* ``"smallest"`` — keep the ``max_nonzeros`` largest-magnitude values
  (requires a fiber-sized sort window, but loses the least signal — for
  attention masks this is "drop the weakest scores").

Dropping payloads never disturbs the stop structure, so downstream
blocks are unaffected except for seeing shorter fibers — which is exactly
what makes a depth-``max_nonzeros + slack`` row buffer *sufficient* and
turns the stochastic deadlock into a bounded-loss approximation.
"""

from __future__ import annotations

from typing import Any

from ...core.channel import Receiver, Sender
from ..token import DONE, Stop
from .base import SamContext, TimingParams

_POLICIES = ("tail", "smallest")


class NonzeroLimiter(SamContext):
    """Cap innermost fibers of an aligned (crd, val) pair (see module docs)."""

    def __init__(
        self,
        in_crd: Receiver,
        in_val: Receiver,
        out_crd: Sender,
        out_val: Sender,
        max_nonzeros: int,
        policy: str = "tail",
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        if max_nonzeros < 1:
            raise ValueError("max_nonzeros must be >= 1")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        super().__init__(timing=timing, name=name)
        self.in_crd = in_crd
        self.in_val = in_val
        self.out_crd = out_crd
        self.out_val = out_val
        self.max_nonzeros = max_nonzeros
        self.policy = policy
        self.dropped = 0  # total payloads discarded (observability)
        self.register(in_crd, in_val, out_crd, out_val)

    def run(self):
        if self.policy == "tail":
            yield from self._run_tail()
        else:
            yield from self._run_smallest()

    def _run_tail(self):
        """Streaming policy: pass the first K of each fiber, drop the rest."""
        kept = 0
        while True:
            crd = yield self.in_crd.dequeue()
            val = yield self.in_val.dequeue()
            if crd is DONE:
                assert val is DONE, f"{self.name}: misaligned DONE"
                yield self.out_crd.enqueue(DONE)
                yield self.out_val.enqueue(DONE)
                return
            if isinstance(crd, Stop):
                assert crd == val, f"{self.name}: misaligned stops {crd!r}/{val!r}"
                yield self.out_crd.enqueue(crd)
                yield self.out_val.enqueue(crd)
                yield self.tick_control()
                kept = 0
                continue
            if kept < self.max_nonzeros:
                kept += 1
                yield self.out_crd.enqueue(crd)
                yield self.out_val.enqueue(val)
            else:
                self.dropped += 1
            yield self.tick()

    def _run_smallest(self):
        """Windowed policy: keep the K largest-magnitude values per fiber."""
        fiber: list[tuple[Any, Any]] = []
        while True:
            crd = yield self.in_crd.dequeue()
            val = yield self.in_val.dequeue()
            if crd is DONE:
                assert val is DONE, f"{self.name}: misaligned DONE"
                yield self.out_crd.enqueue(DONE)
                yield self.out_val.enqueue(DONE)
                return
            if isinstance(crd, Stop):
                assert crd == val, f"{self.name}: misaligned stops {crd!r}/{val!r}"
                yield from self._flush(fiber)
                fiber = []
                yield self.out_crd.enqueue(crd)
                yield self.out_val.enqueue(crd)
                yield self.tick_control()
                continue
            fiber.append((crd, val))
            yield self.tick()

    def _flush(self, fiber):
        if len(fiber) > self.max_nonzeros:
            self.dropped += len(fiber) - self.max_nonzeros
            # Keep the K largest magnitudes, re-emitted in coordinate order.
            keep = sorted(
                sorted(fiber, key=lambda cv: -abs(cv[1]))[: self.max_nonzeros],
                key=lambda cv: cv[0],
            )
        else:
            keep = fiber
        for crd, val in keep:
            yield self.out_crd.enqueue(crd)
            yield self.out_val.enqueue(val)
            yield self.tick()
