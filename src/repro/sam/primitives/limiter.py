"""Runtime sparsity guarantees: the excess-nonzero limiter.

Section VIII-A1 observes that random sparsity makes channel provisioning
*stochastic*: a length-64 fiber at 10% density expects <7 nonzeros, but
has a 0.5% chance of exceeding 16 — so a depth-16 buffer deadlocks the
system "after only a few thousand iterations".  The paper proposes
"runtime sparsity guarantees, such as a unit which drops excess
nonzeros", and leaves it as future work.  This module implements it.

:class:`NonzeroLimiter` caps every innermost fiber of an aligned
(crd, val) stream pair at ``max_nonzeros`` elements, dropping the rest.
Two policies:

* ``"tail"`` — keep the first ``max_nonzeros`` (cheapest hardware: a
  counter and a gate);
* ``"smallest"`` — keep the ``max_nonzeros`` largest-magnitude values
  (requires a fiber-sized sort window, but loses the least signal — for
  attention masks this is "drop the weakest scores").

Dropping payloads never disturbs the stop structure, so downstream
blocks are unaffected except for seeing shorter fibers — which is exactly
what makes a depth-``max_nonzeros + slack`` row buffer *sufficient* and
turns the stochastic deadlock into a bounded-loss approximation.
"""

from __future__ import annotations

from typing import Any

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..token import DONE, Stop
from .base import SamContext, TimingParams

_POLICIES = ("tail", "smallest")


class NonzeroLimiter(SamContext):
    """Cap innermost fibers of an aligned (crd, val) pair (see module docs)."""

    checkpoint_attrs = ("_crd", "_val", "_kept", "_fiber", "_emit_index", "dropped")

    def __init__(
        self,
        in_crd: Receiver,
        in_val: Receiver,
        out_crd: Sender,
        out_val: Sender,
        max_nonzeros: int,
        policy: str = "tail",
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        if max_nonzeros < 1:
            raise ValueError("max_nonzeros must be >= 1")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        super().__init__(timing=timing, name=name)
        self.in_crd = in_crd
        self.in_val = in_val
        self.out_crd = out_crd
        self.out_val = out_val
        self.max_nonzeros = max_nonzeros
        self.policy = policy
        self.dropped = 0  # total payloads discarded (observability)
        self._crd = UNSET
        self._val = UNSET
        self._kept = 0  # payloads passed so far in the current fiber (tail)
        self._fiber: list[tuple[Any, Any]] = []  # gathered window (smallest)
        self._emit_index = 0  # progress through the current window flush
        self.register(in_crd, in_val, out_crd, out_val)

    def run(self):
        if self.policy == "tail":
            yield from self._run_tail()
        else:
            yield from self._run_smallest()

    def _run_tail(self):
        """Streaming policy: pass the first K of each fiber, drop the rest."""
        max_nonzeros = self.max_nonzeros
        deq_crd = self.in_crd.dequeue()
        deq_val = self.in_val.dequeue()
        enq_crd = self.out_crd.enqueue(None)
        enq_val = self.out_val.enqueue(None)
        pull = FusedOps(deq_crd, deq_val)
        emit = FusedOps(enq_crd, enq_val, self.tick(), deq_crd, deq_val)
        emit_control = FusedOps(
            enq_crd, enq_val, self.tick_control(), deq_crd, deq_val
        )
        drop = FusedOps(self.tick(), deq_crd, deq_val)
        if self._crd is UNSET:
            self._crd, self._val = yield pull
        while True:
            crd, val = self._crd, self._val
            if crd is DONE:
                assert val is DONE, f"{self.name}: misaligned DONE"
                enq_crd.data = enq_val.data = DONE
                yield (enq_crd, enq_val)
                return
            if crd.__class__ is Stop:
                assert crd == val, f"{self.name}: misaligned stops {crd!r}/{val!r}"
                enq_crd.data = enq_val.data = crd
                res = yield emit_control
                self._kept = 0
                self._crd, self._val = res[3], res[4]
                continue
            if self._kept < max_nonzeros:
                enq_crd.data = crd
                enq_val.data = val
                res = yield emit
                self._kept += 1
                self._crd, self._val = res[3], res[4]
            else:
                res = yield drop
                self.dropped += 1
                self._crd, self._val = res[1], res[2]

    def _run_smallest(self):
        """Windowed policy: keep the K largest-magnitude values per fiber."""
        deq_crd = self.in_crd.dequeue()
        deq_val = self.in_val.dequeue()
        enq_crd = self.out_crd.enqueue(None)
        enq_val = self.out_val.enqueue(None)
        pull = FusedOps(deq_crd, deq_val)
        gather = FusedOps(self.tick(), deq_crd, deq_val)
        emit = FusedOps(enq_crd, enq_val, self.tick())
        emit_control = FusedOps(
            enq_crd, enq_val, self.tick_control(), deq_crd, deq_val
        )
        if self._crd is UNSET:
            self._crd, self._val = yield pull
        while True:
            crd, val = self._crd, self._val
            if crd is DONE:
                assert val is DONE, f"{self.name}: misaligned DONE"
                enq_crd.data = enq_val.data = DONE
                yield (enq_crd, enq_val)
                return
            if crd.__class__ is Stop:
                assert crd == val, f"{self.name}: misaligned stops {crd!r}/{val!r}"
                selected = self._select(self._fiber)
                while self._emit_index < len(selected):
                    keep_crd, keep_val = selected[self._emit_index]
                    enq_crd.data = keep_crd
                    enq_val.data = keep_val
                    yield emit
                    self._emit_index += 1
                enq_crd.data = enq_val.data = crd
                res = yield emit_control
                if len(self._fiber) > self.max_nonzeros:
                    self.dropped += len(self._fiber) - self.max_nonzeros
                self._fiber = []
                self._emit_index = 0
                self._crd, self._val = res[3], res[4]
                continue
            res = yield gather
            self._fiber.append((crd, val))
            self._crd, self._val = res[1], res[2]

    def _select(self, fiber):
        """The kept (crd, val) pairs, in coordinate order (pure: drop
        accounting happens at the fiber boundary, not here, so the flush
        loop can re-derive its pending op from restored state)."""
        if len(fiber) > self.max_nonzeros:
            # Keep the K largest magnitudes, re-emitted in coordinate order.
            return sorted(
                sorted(fiber, key=lambda cv: -abs(cv[1]))[: self.max_nonzeros],
                key=lambda cv: cv[0],
            )
        return fiber
