"""Reduction contexts: streaming reducers and tree nodes (Fig. 3 workload)."""

from __future__ import annotations

from typing import Any, Callable

from ..core.channel import Receiver, Sender
from ..core.context import Context
from ..core.errors import ChannelClosed
from ..core.ops import IncrCycles
from ..core.time import Time


class ReduceNode(Context):
    """A binary tree node: combine one element from each child per firing.

    This is the unit of the paper's DAM-vs-SST microbenchmark: a binary
    reduction tree whose nodes combine their children's values and
    optionally perform extra work per firing (``work_fn``, the naive
    Fibonacci in Section VI-B).
    """

    def __init__(
        self,
        left: Receiver,
        right: Receiver,
        out: Sender,
        combine: Callable[[Any, Any], Any],
        work_fn: Callable[[], Any] | None = None,
        ii: Time = 1,
        name: str | None = None,
    ):
        super().__init__(name=name)
        self.left = left
        self.right = right
        self.out = out
        self.combine = combine
        self.work_fn = work_fn
        self.ii = ii
        self.register(left, right, out)

    def run(self):
        combine = self.combine
        work_fn = self.work_fn
        try:
            while True:
                a = yield self.left.dequeue()
                b = yield self.right.dequeue()
                result = combine(a, b)
                if work_fn is not None:
                    result = result + work_fn() * 0  # work is timed, not valued
                yield IncrCycles(self.ii)
                yield self.out.enqueue(result)
        except ChannelClosed:
            return


class StreamReducer(Context):
    """Reduce fixed-size groups of a stream to single values.

    Consumes ``group`` consecutive elements, emits their reduction, and
    repeats until the input closes.  ``group=None`` reduces the entire
    stream to one value at close.
    """

    def __init__(
        self,
        inp: Receiver,
        out: Sender,
        combine: Callable[[Any, Any], Any],
        group: int | None = None,
        initial: Any = None,
        ii: Time = 1,
        name: str | None = None,
    ):
        if group is not None and group < 1:
            raise ValueError("group must be >= 1")
        super().__init__(name=name)
        self.inp = inp
        self.out = out
        self.combine = combine
        self.group = group
        self.initial = initial
        self.ii = ii
        self.register(inp, out)

    def run(self):
        combine = self.combine
        if self.group is None:
            accumulator = self.initial
            saw_any = False
            try:
                while True:
                    value = yield self.inp.dequeue()
                    yield IncrCycles(self.ii)
                    if not saw_any and accumulator is None:
                        accumulator = value
                    else:
                        accumulator = combine(accumulator, value)
                    saw_any = True
            except ChannelClosed:
                if saw_any or self.initial is not None:
                    yield self.out.enqueue(accumulator)
                return
        while True:
            accumulator = self.initial
            saw_any = False
            for _ in range(self.group):
                try:
                    value = yield self.inp.dequeue()
                except ChannelClosed:
                    if saw_any:
                        raise AssertionError(
                            f"{self.name}: input closed mid-group"
                        ) from None
                    return
                yield IncrCycles(self.ii)
                if not saw_any and accumulator is None:
                    accumulator = value
                else:
                    accumulator = combine(accumulator, value)
                saw_any = True
            yield self.out.enqueue(accumulator)
