"""The sequential event-driven engine and link abstraction."""

from __future__ import annotations

import itertools
import time as _wallclock
from dataclasses import dataclass
from typing import Any

from .component import Component
from .event import Event, EventQueue

_link_ids = itertools.count()


class Link:
    """A latency-annotated connection to a (component, port) endpoint.

    The analog of an ``SST::Link``.  Links are unidirectional and, unlike
    DAM channels, unbounded and backpressure-free: the engine delivers
    every event, ready or not.
    """

    __slots__ = ("id", "name", "dst", "port", "latency")

    def __init__(
        self,
        dst: Component,
        port: str,
        latency: int = 1,
        name: str | None = None,
    ):
        if latency < 1:
            # Zero-latency links would make the parallel conservative
            # window empty; SST likewise requires positive link latency.
            raise ValueError("link latency must be >= 1")
        self.id = next(_link_ids)
        self.name = name or f"link{self.id}"
        self.dst = dst
        self.port = port
        self.latency = latency

    def __repr__(self) -> str:
        return f"Link({self.name} -> {self.dst.name}.{self.port}, lat={self.latency})"


@dataclass
class SimulationStats:
    """What a run cost: simulated span, events processed, real seconds."""

    final_time: int
    events_processed: int
    real_seconds: float

    def __str__(self) -> str:
        return (
            f"SimulationStats(final_time={self.final_time}, "
            f"events={self.events_processed}, real={self.real_seconds:.4f}s)"
        )


class Engine:
    """Sequential event-driven simulation: one global ordered queue."""

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.components: list[Component] = []
        self.now = 0

    def add(self, component: Component) -> Component:
        component.engine = self
        self.components.append(component)
        return component

    def add_all(self, components: Any) -> None:
        for component in components:
            self.add(component)

    def schedule_link(self, link: Link, time: int, payload: Any) -> None:
        self.queue.push(Event(time + link.latency, link.dst, link.port, payload))

    def schedule_event(
        self, component: Component, port: str, time: int, payload: Any = None
    ) -> None:
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        self.queue.push(Event(time, component, port, payload))

    def run(self, until: int | None = None) -> SimulationStats:
        """Drain the event queue (optionally stopping after ``until``)."""
        start = _wallclock.perf_counter()
        for component in self.components:
            component.start()
        processed = 0
        while self.queue:
            event = self.queue.pop()
            if until is not None and event.time > until:
                break
            self.now = event.time
            event.component.deliver(event.time, event.port, event.payload)
            processed += 1
        return SimulationStats(
            final_time=self.now,
            events_processed=processed,
            real_seconds=_wallclock.perf_counter() - start,
        )
