"""Simulated time: local, monotonic, per-context clocks.

The paper's CSPT model (CSP with Time) gives every context a *local* notion
of simulated time.  A context may advance its clock forward arbitrarily far,
but never backwards; a finished context's clock reads :data:`INFINITY` so
that peers waiting on it never block again.

Times are plain nonnegative integers (cycles).  :data:`INFINITY` is
``math.inf``, which compares correctly against integers, so the rest of the
framework does not need a special case for finished contexts.

:class:`TimeCell` is the single mutable clock object owned by each context.
Every executor mutates it only from the owning context's thread of control;
other contexts *read* it (the paper's Synchronization-via-Atomics) — under
CPython the GIL makes those reads atomic, which is the documented analog of
x86 acquire loads.

The process executor extends the same contract across address spaces:
:class:`~repro.core.executor.shm.SharedTimeCell` subclasses this cell to
mirror every advance into a float64 slot in shared memory (written after
the local update, so remote reads are always a lower bound), and peers in
other worker processes read it through
:class:`~repro.core.executor.shm.SharedTimeView` — SVA as one aligned
8-byte load, unchanged in spirit.
"""

from __future__ import annotations

import math
from typing import Callable, Union

#: Simulated time value: integer cycles, or ``INFINITY`` once finished.
Time = Union[int, float]

#: The clock value of a finished context.
INFINITY: float = math.inf


class TimeCell:
    """A context's local clock: monotonic simulated time.

    The cell supports an optional ``on_advance`` hook, installed by the
    threaded executor to implement Synchronization-via-Parking (waking
    parked peers when this clock passes their threshold).  The sequential
    executor leaves it unset and polls instead.
    """

    __slots__ = ("_time", "on_advance")

    def __init__(self, start: Time = 0):
        if start < 0:
            raise ValueError(f"time must be nonnegative, got {start}")
        self._time: Time = start
        self.on_advance: Callable[[Time], None] | None = None

    def now(self) -> Time:
        """Return the current simulated time (a lower bound for readers)."""
        return self._time

    def advance(self, target: Time) -> Time:
        """Move the clock forward to ``max(now, target)`` and return it.

        Advancing to a time in the past is a no-op, *not* an error: this is
        how channel operations express "the clock is at least this far"
        without each call site needing a max().
        """
        if target > self._time:
            self._time = target
            hook = self.on_advance
            if hook is not None:
                hook(target)
        return self._time

    def incr(self, cycles: Time) -> Time:
        """Advance the clock by ``cycles`` (must be nonnegative)."""
        if cycles < 0:
            raise ValueError(f"cannot step backwards in time by {cycles}")
        if cycles > 0:
            self._time += cycles
            hook = self.on_advance
            if hook is not None:
                hook(self._time)
        return self._time

    def finish(self) -> None:
        """Pin the clock at :data:`INFINITY` (the context has finished)."""
        self._time = INFINITY
        hook = self.on_advance
        if hook is not None:
            hook(INFINITY)

    @property
    def finished(self) -> bool:
        return self._time == INFINITY

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeCell({self._time})"
