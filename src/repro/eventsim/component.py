"""Event-driven components (the SST-style user interface).

A component registers a handler per input port; the engine invokes it for
every delivered event.  Handlers cannot reject or defer events, so any
component with multi-input alignment must buffer events itself — this is
exactly the verbosity the paper's Listing 2 illustrates, kept here on
purpose as the faithful baseline programming model.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine, Link

_component_ids = itertools.count()


class PortBuffer:
    """A local event buffer: the event-driven workaround for alignment.

    Handlers must accept every event immediately, so components queue
    payloads here until a full input set is available.  Buffers are
    unbounded — the structural reason event-driven models cannot simulate
    backpressure (Section III).
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: deque[Any] = deque()

    def push(self, item: Any) -> None:
        self._items.append(item)

    def pop(self) -> Any:
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class Component:
    """Base class for event-driven models.

    Subclasses register handlers with :meth:`on` (usually in ``__init__``)
    and send data over links with :meth:`send`.  ``self.engine`` is set
    when the component is added to an engine.
    """

    def __init__(self, name: str | None = None):
        self.id = next(_component_ids)
        self.name = name or f"{type(self).__name__}{self.id}"
        self.engine: "Engine | None" = None
        self._handlers: dict[str, Callable[[int, Any], None]] = {}

    def on(self, port: str, handler: Callable[[int, Any], None]) -> None:
        """Register ``handler(time, payload)`` for events on ``port``."""
        self._handlers[port] = handler

    def deliver(self, time: int, port: str, payload: Any) -> None:
        """Invoked by the engine; dispatches to the registered handler."""
        handler = self._handlers.get(port)
        if handler is None:
            raise KeyError(f"{self.name}: no handler for port {port!r}")
        handler(time, payload)

    def send(self, link: "Link", time: int, payload: Any, extra_delay: int = 0) -> None:
        """Send ``payload`` down ``link``; arrives after the link latency."""
        assert self.engine is not None, f"{self.name} not attached to an engine"
        self.engine.schedule_link(link, time + extra_delay, payload)

    def schedule_self(self, port: str, time: int, payload: Any = None) -> None:
        """Schedule a self-event (timers, initiation intervals)."""
        assert self.engine is not None
        self.engine.schedule_event(self, port, time, payload)

    def start(self) -> None:
        """Hook: called once before simulation begins (schedule kick-offs)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class MergeComponent(Component):
    """The paper's Listing 2: a merge unit in the event-driven style.

    Contrast with :class:`repro.contexts.merge.Merge` (Listing 1): this
    version needs explicit buffers for alignment, an availability check on
    both buffers in both handlers, and a busy/initiation-interval self-
    event — and it still cannot exert backpressure on its producers.
    """

    def __init__(self, out_link: "Link", ii: int = 2, name: str | None = None):
        super().__init__(name=name)
        self.out_link = out_link
        self.ii = ii
        self.buffer_a = PortBuffer()
        self.buffer_b = PortBuffer()
        self.busy_until = 0
        self.fires_pending = 0  # scheduled but not yet executed
        self.on("a", self._on_a)
        self.on("b", self._on_b)
        self.on("fire", self._on_fire)

    def _on_a(self, time: int, payload: Any) -> None:
        self.buffer_a.push(payload)
        self._try_fire(time)

    def _on_b(self, time: int, payload: Any) -> None:
        self.buffer_b.push(payload)
        self._try_fire(time)

    def _try_fire(self, time: int) -> None:
        pairs_ready = min(len(self.buffer_a), len(self.buffer_b))
        if pairs_ready <= self.fires_pending:
            return  # every available pair already has a fire scheduled
        fire_at = max(time, self.busy_until)
        self.busy_until = fire_at + self.ii
        self.fires_pending += 1
        self.schedule_self("fire", fire_at)

    def _on_fire(self, time: int, _payload: Any) -> None:
        self.fires_pending -= 1
        a = self.buffer_a._items[0]
        b = self.buffer_b._items[0]
        winner = self.buffer_a.pop() if a <= b else self.buffer_b.pop()
        self.send(self.out_link, time, winner)
        self._try_fire(time)  # more pairs may already be waiting
