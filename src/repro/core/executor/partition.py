"""Context-graph partitioning for the process executor.

Sharding a DAM program across worker processes is profitable exactly when
the *cut* — the channels whose endpoints land in different workers — is
light: every cut channel's traffic crosses a shared-memory shuttle instead
of a plain deque.  :func:`plan_partition` therefore groups contexts by a
greedy edge-weighted agglomeration (heaviest channels first, Kruskal
style, under a balance cap) and then packs the groups onto workers
largest-first.  Channel weights come from, in priority order:

1. an explicit ``weights`` mapping (channel name → traffic), typically
   produced by :func:`channel_weights` from a *profiling run* of an
   identically-built program on the sequential executor;
2. the channel's own :class:`~repro.core.channel.ChannelStats` counters,
   when the program object itself was previously profiled;
3. a default of 1 (pure topology: still groups connected components).

Embarrassingly-partitionable programs — e.g. the Fig. 9 parallel-MHA
sweep, whose pipelines share no channels — split with zero cut, which is
what lets the process executor recover real wall-clock speedups.

Manual placement: :meth:`repro.core.program.ProgramBuilder.pin` fixes a
context to a worker index; the agglomeration never merges groups pinned
to different workers and the packing honors every pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import GraphConstructionError

if TYPE_CHECKING:  # pragma: no cover
    from ..channel import Channel
    from ..context import Context
    from ..program import Program


def channel_weights(program: "Program") -> dict[str, float]:
    """Per-channel traffic weights from a profiled program, keyed by name.

    Weight is ``enqueues + dequeues`` after a run.  Same-named channels
    (e.g. the per-pipeline clones of a swept kernel) are averaged, so a
    small profiling configuration transfers to a scaled-up build of the
    same graph.
    """
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for channel in program.channels:
        traffic = channel.stats.enqueues + channel.stats.dequeues
        totals[channel.name] = totals.get(channel.name, 0.0) + traffic
        counts[channel.name] = counts.get(channel.name, 0) + 1
    return {name: totals[name] / counts[name] for name in totals}


def pins_from_placement(
    program: "Program", placement: Optional[dict[str, int]]
) -> dict[int, int]:
    """Convert an observed run placement back into planner pins.

    ``placement`` is :attr:`RunSummary.placement` — context name →
    worker index where the context *actually* ran, with stolen clusters
    credited to their adopter rather than their planned owner.  The
    returned ``{id(context): worker}`` mapping plugs straight into
    ``RunConfig(pins=...)`` / :func:`plan_partition`, so a re-run (of an
    identically-built program) starts from the locality the previous run
    converged to instead of re-planning the same skew and re-stealing.

    Contexts absent from ``placement`` (e.g. a scaled-up build with new
    pipelines) are simply left unpinned.  Same-named contexts consume
    placement entries in program order, mirroring how
    :func:`channel_weights` averages same-named channels.
    """
    if not placement:
        return {}
    return {
        id(ctx): placement[ctx.name]
        for ctx in program.contexts
        if ctx.name in placement
    }


@dataclass
class PartitionPlan:
    """The result of partitioning: per-worker context groups + the cut."""

    groups: list[list["Context"]]   # index = worker; may contain empties
    cut: list["Channel"]            # channels crossing worker boundaries
    cut_weight: float               # summed weight of the cut
    assignment: dict[int, int]      # id(context) -> worker index

    @property
    def workers_used(self) -> int:
        return sum(1 for group in self.groups if group)

    def describe(self) -> str:
        sizes = "/".join(str(len(group)) for group in self.groups)
        return (
            f"{self.workers_used} worker(s), group sizes [{sizes}], "
            f"{len(self.cut)} cut channel(s) (weight {self.cut_weight:g})"
        )


@dataclass(frozen=True)
class ClusterSpec:
    """One migratable unit of work: a connected component of a worker's
    group under that worker's *internal* channels.

    Two clusters of the same worker share no channel at all, and every
    channel leaving a cluster is, by construction, a planned-cut channel
    (already bridged by a shuttle) — so a cluster can be activated by
    *any* worker without creating new communication paths.  That is the
    invariant the process executor's work stealing rests on.

    ``contexts`` are slots into ``program.contexts`` and ``channels``
    indices into ``program.channels`` (both identical in parent and
    forked children), so a spec is plain data either side of a fork.
    """

    index: int                 # position on the claim board
    owner: int                 # planned (compacted) worker index
    contexts: tuple[int, ...]  # slots into program.contexts
    channels: tuple[int, ...]  # cluster-internal channel indices

    @property
    def size(self) -> int:
        return len(self.contexts)


def plan_clusters(
    program: "Program", assignment: dict[int, int]
) -> list["ClusterSpec"]:
    """Split each worker's group into :class:`ClusterSpec` units.

    ``assignment`` maps ``id(context)`` → worker index (already
    compacted: every referenced worker spawns a process).  Clusters are
    ordered deterministically by (owner, first context slot), which is
    also their claim-board index.
    """
    contexts = program.contexts
    n = len(contexts)
    index_of = {id(ctx): i for i, ctx in enumerate(contexts)}

    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    intra: list[tuple[int, int, int]] = []  # (channel idx, a, b)
    for chan_index, channel in enumerate(program.channels):
        sender = channel.sender_owner
        receiver = channel.receiver_owner
        if sender is None or receiver is None:  # pragma: no cover - defensive
            continue
        a, b = index_of[id(sender)], index_of[id(receiver)]
        if assignment[id(sender)] != assignment[id(receiver)]:
            continue  # planned-cut channel: never cluster-internal
        intra.append((chan_index, a, b))
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    members: dict[int, list[int]] = {}
    for i in range(n):
        members.setdefault(find(i), []).append(i)
    channels_of: dict[int, list[int]] = {}
    for chan_index, a, _ in intra:
        channels_of.setdefault(find(a), []).append(chan_index)

    roots = sorted(
        members, key=lambda r: (assignment[id(contexts[members[r][0]])], r)
    )
    specs: list[ClusterSpec] = []
    for root in roots:
        slots = tuple(members[root])
        specs.append(
            ClusterSpec(
                index=len(specs),
                owner=assignment[id(contexts[slots[0]])],
                contexts=slots,
                channels=tuple(sorted(channels_of.get(root, ()))),
            )
        )
    return specs


class _UnionFind:
    __slots__ = ("parent", "size", "pin")

    def __init__(self, n: int, pins: list[Optional[int]]):
        self.parent = list(range(n))
        self.size = [1] * n
        self.pin: list[Optional[int]] = list(pins)

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def try_union(self, a: int, b: int, cap: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        if self.size[ra] + self.size[rb] > cap:
            return False
        pa, pb = self.pin[ra], self.pin[rb]
        if pa is not None and pb is not None and pa != pb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.pin[ra] = pa if pa is not None else pb
        return True


def plan_partition(
    program: "Program",
    workers: int,
    weights: Optional[dict[str, float]] = None,
    pins: Optional[dict[int, int]] = None,
    balance: float = 1.2,
) -> PartitionPlan:
    """Partition ``program.contexts`` into ``workers`` groups.

    ``pins`` maps ``id(context)`` → worker index (manual placement, see
    :meth:`ProgramBuilder.pin`); unspecified contexts are placed by the
    greedy agglomeration.  ``balance`` bounds group size at
    ``ceil(balance * n / workers)`` so one worker cannot absorb the whole
    graph just because it is densely connected.
    """
    if workers < 1:
        raise GraphConstructionError(f"workers must be >= 1, got {workers}")
    contexts = program.contexts
    n = len(contexts)
    index_of = {id(ctx): i for i, ctx in enumerate(contexts)}

    pin_list: list[Optional[int]] = [None] * n
    for ctx_id, worker in (pins or {}).items():
        if ctx_id not in index_of:
            raise GraphConstructionError(
                "pinned context is not part of this program"
            )
        if not 0 <= worker < workers:
            raise GraphConstructionError(
                f"pin to worker {worker} outside [0, {workers})"
            )
        pin_list[index_of[ctx_id]] = worker

    if workers == 1:
        assignment = {id(ctx): 0 for ctx in contexts}
        return PartitionPlan([list(contexts)], [], 0.0, assignment)

    def weight_of(channel: "Channel") -> float:
        if weights is not None and channel.name in weights:
            return max(weights[channel.name], 0.0)
        traffic = channel.stats.enqueues + channel.stats.dequeues
        return float(traffic) if traffic > 0 else 1.0

    # Edges sorted heaviest-first; channel id breaks ties deterministically.
    edges: list[tuple[float, int, "Channel", int, int]] = []
    for channel in program.channels:
        sender = channel.sender_owner
        receiver = channel.receiver_owner
        if sender is None or receiver is None:
            continue  # unreachable for built programs; defensive
        a, b = index_of[id(sender)], index_of[id(receiver)]
        if a == b:
            continue  # self-loop: never cuttable
        edges.append((weight_of(channel), channel.id, channel, a, b))
    edges.sort(key=lambda e: (-e[0], e[1]))

    cap = max(1, math.ceil(balance * n / workers))
    uf = _UnionFind(n, pin_list)
    for _, _, _, a, b in edges:
        uf.try_union(a, b, cap)

    # Collect groups in first-member order (deterministic).
    members: dict[int, list[int]] = {}
    order: list[int] = []
    for i in range(n):
        root = uf.find(i)
        if root not in members:
            members[root] = []
            order.append(root)
        members[root].append(i)

    # Pack groups onto workers: pinned groups first, then largest-first
    # onto the least-loaded worker (lowest index on ties).
    groups: list[list["Context"]] = [[] for _ in range(workers)]
    load = [0] * workers
    unpinned: list[int] = []
    for root in order:
        pin = uf.pin[root]
        if pin is not None:
            groups[pin].extend(contexts[i] for i in members[root])
            load[pin] += len(members[root])
        else:
            unpinned.append(root)
    unpinned.sort(key=lambda r: (-len(members[r]), members[r][0]))
    for root in unpinned:
        target = min(range(workers), key=lambda w: (load[w], w))
        groups[target].extend(contexts[i] for i in members[root])
        load[target] += len(members[root])

    assignment: dict[int, int] = {}
    for worker, group in enumerate(groups):
        for ctx in group:
            assignment[id(ctx)] = worker

    cut: list["Channel"] = []
    cut_weight = 0.0
    for channel in program.channels:
        sender = channel.sender_owner
        receiver = channel.receiver_owner
        if sender is None or receiver is None:
            continue
        if assignment[id(sender)] != assignment[id(receiver)]:
            cut.append(channel)
            cut_weight += weight_of(channel)

    return PartitionPlan(groups, cut, cut_weight, assignment)
