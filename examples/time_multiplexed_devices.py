"""Case study walkthrough: time-multiplexing real resources (Sec. IX).

Two demonstrations:

1. Latency-sensitive inference batching — the workload that is awkward in
   event-driven simulators because a result's time depends on *possible
   future* inputs.  The batching context runs ahead in simulated time and
   passes exact (launch time, size) records over a *real* channel to the
   lagging inference context.

2. Virtual devices multiplexing physical compute — several simulated
   accelerators sharing lock-guarded numpy devices (real compute, real
   contention), with the unfair-lock task-residency optimization.

Run:  python examples/time_multiplexed_devices.py
"""

from repro.contexts import Collector
from repro.core import ProgramBuilder
from repro.multiplex import (
    BatchingContext,
    InferenceContext,
    poisson_arrivals,
    run_multiplex_experiment,
)
from repro.multiplex.batching import RequestSource


def batching_demo():
    print("== latency-sensitive inference batching ==")
    gaps = poisson_arrivals(24, mean_gap=4.0, seed=1)
    builder = ProgramBuilder()
    req_snd, req_rcv = builder.bounded(8, name="requests")
    # A *real* channel: data without simulated-time coupling, so the
    # batcher may run arbitrarily far ahead of the inference context.
    rec_snd, rec_rcv = builder.real(name="batch_records")
    done_snd, done_rcv = builder.unbounded(name="completions")

    builder.add(RequestSource(req_snd, gaps))
    builder.add(BatchingContext(req_rcv, rec_snd, max_batch=4, timeout=12))
    inference = builder.add(
        InferenceContext(rec_rcv, done_snd, cycles_per_batch=30, cycles_per_item=2)
    )
    builder.add(Collector(done_rcv, name="downstream"))
    builder.build().run()

    print("  completion_time  batch_size  trigger")
    for time, size in inference.completions:
        trigger = "size" if size == 4 else "timeout"
        print(f"  {time:>15}  {size:>10}  {trigger}")


def multiplex_demo():
    print()
    print("== virtual devices over multiplexed physical compute ==")
    for virtual, physical, shared in [(1, 1, False), (4, 1, False), (4, 1, True), (4, 2, False)]:
        result = run_multiplex_experiment(
            virtual=virtual,
            physical=physical,
            batches=5,
            batch_size=48,
            work_dim=96,
            shared_task=shared,
        )
        kind = "shared task " if shared else "distinct tasks"
        print(
            f"  {result.label()} ({kind}): "
            f"mean {result.mean_seconds * 1e6:7.0f}us/batch  "
            f"std {result.std_seconds * 1e6:6.0f}us  "
            f"task loads {result.device_loads}"
        )
    print("  (shared tasks skip the stash/load — the unfair-lock fast path)")


if __name__ == "__main__":
    batching_demo()
    multiplex_demo()
