"""Legacy CrdHold: cycle-based coordinate replication."""

from __future__ import annotations

from typing import Any

from ...cyclesim.channel import CycleChannel
from ...sam.token import DONE, Stop
from ..base import LegacySamPrimitive

_NEED_OUTER = 0
_SERVING = 1
_CONSUME_OUTER_STOP = 2
_CONSUME_INNER_DONE = 3
_EMIT_DONE = 4
_PAIR_STOP = 5  # empty outer fiber: owe an inner-stop consume + emit
_HALT = 6


class LegacyCrdHold(LegacySamPrimitive):
    """Emit the held outer coordinate once per inner payload."""

    def __init__(
        self,
        in_outer_crd: CycleChannel,
        in_inner_crd: CycleChannel,
        out_crd: CycleChannel,
        name: str | None = None,
        ii: int = 1,
    ):
        super().__init__(name=name, ii=ii)
        self.in_outer_crd = in_outer_crd
        self.in_inner_crd = in_inner_crd
        self.out_crd = out_crd
        self.state = _NEED_OUTER
        self.held: Any = None
        self.pending_level = -1

    def tick(self, cycle: int) -> None:
        if self.stalled():
            return
        if self.state == _HALT:
            self.finished = True
            return

        if self.state == _NEED_OUTER:
            if not self.in_outer_crd.can_pop():
                return
            token = self.in_outer_crd.pop()
            if token is DONE:
                self.state = _CONSUME_INNER_DONE
                return
            if isinstance(token, Stop):
                # Empty outer fiber: pair with the inner stream's
                # one-deeper stop next cycle.
                self.pending_level = token.level
                self.state = _PAIR_STOP
                return
            self.held = token
            self.state = _SERVING
            return

        if self.state == _PAIR_STOP:
            if not (self.in_inner_crd.can_pop() and self.out_crd.can_push()):
                return
            inner = self.in_inner_crd.pop()
            if not (
                isinstance(inner, Stop)
                and inner.level == self.pending_level + 1
            ):
                raise AssertionError(
                    f"{self.name}: outer stop S{self.pending_level} paired "
                    f"with inner {inner!r}"
                )
            self.out_crd.push(inner)
            self.charge()
            self.pending_level = -1
            self.state = _NEED_OUTER
            return

        if self.state == _SERVING:
            if not (self.in_inner_crd.can_pop() and self.out_crd.can_push()):
                return
            inner = self.in_inner_crd.pop()
            if inner is DONE:
                raise AssertionError(f"{self.name}: inner stream done mid-fiber")
            if isinstance(inner, Stop):
                self.out_crd.push(inner)
                self.charge()
                if inner.level >= 1:
                    self.pending_level = inner.level - 1
                    self.state = _CONSUME_OUTER_STOP
                else:
                    self.state = _NEED_OUTER
                return
            self.out_crd.push(self.held)
            self.charge()
            return

        if self.state == _CONSUME_OUTER_STOP:
            if not self.in_outer_crd.can_pop():
                return
            matching = self.in_outer_crd.pop()
            if not (
                isinstance(matching, Stop)
                and matching.level == self.pending_level
            ):
                raise AssertionError(
                    f"{self.name}: expected outer Stop({self.pending_level}), "
                    f"got {matching!r}"
                )
            self.pending_level = -1
            self.state = _NEED_OUTER
            return

        if self.state == _CONSUME_INNER_DONE:
            if not self.in_inner_crd.can_pop():
                return
            inner = self.in_inner_crd.pop()
            if inner is not DONE:
                raise AssertionError(
                    f"{self.name}: outer done but inner sent {inner!r}"
                )
            self.state = _EMIT_DONE
            return

        if self.state == _EMIT_DONE:
            if not self.out_crd.can_push():
                return
            self.out_crd.push(DONE)
            self.state = _HALT
            self.finished = True
            return
