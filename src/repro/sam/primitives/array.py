"""Value array lookup: SAM's Array (vals) primitive."""

from __future__ import annotations

import numpy as np

from ...core.channel import Receiver, Sender
from ...core.context import UNSET
from ...core.ops import FusedOps
from ..token import ABSENT, DONE, Stop
from .base import SamContext, TimingParams


class ArrayVals(SamContext):
    """Map leaf references to stored values.

    References index the tensor's values array; ``ABSENT`` references (a
    union's missing side) read as 0.0, which is what makes union-based
    addition work without special cases downstream.  Control tokens pass
    through unchanged.
    """

    checkpoint_attrs = ("_token",)

    def __init__(
        self,
        vals: np.ndarray,
        in_ref: Receiver,
        out_val: Sender,
        timing: TimingParams | None = None,
        name: str | None = None,
    ):
        super().__init__(timing=timing, name=name)
        self.vals = np.asarray(vals, dtype=np.float64)
        self.in_ref = in_ref
        self.out_val = out_val
        self._token = UNSET
        self.register(in_ref, out_val)

    def run(self):
        vals = self.vals
        deq = self.in_ref.dequeue()
        enq = self.out_val.enqueue(None)
        step = FusedOps(enq, self.tick(), deq)
        step_control = FusedOps(enq, self.tick_control(), deq)
        if self._token is UNSET:
            self._token = yield deq
        while True:
            token = self._token
            if token is DONE:
                enq.data = DONE
                yield enq
                return
            if token.__class__ is Stop:
                enq.data = token
                self._token = (yield step_control)[2]
            else:
                enq.data = 0.0 if token is ABSENT else float(vals[token])
                self._token = (yield step)[2]
