"""Test harnesses for SAM primitives: run one block on explicit streams.

These helpers wire :class:`~repro.sam.primitives.source.StreamSource`
inputs and :class:`~repro.sam.primitives.write.StreamSink` outputs around
a primitive under test and return the raw output token lists.  They are
part of the public API because downstream users writing new primitives
need the same scaffolding.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..core.program import ProgramBuilder
from .primitives.source import StreamSource
from .primitives.write import StreamSink


def run_block(
    make_block: Callable[..., Any],
    inputs: Sequence[Sequence[Any]],
    n_outputs: int,
    depth: int | None = None,
    executor: str = "sequential",
) -> list[list[Any]]:
    """Run one primitive on explicit input token streams.

    ``make_block(receivers, senders) -> context`` builds the block under
    test from the harness-provided channel endpoints.  Returns one token
    list per output stream (including control tokens).
    """
    builder = ProgramBuilder()
    receivers = []
    for index, tokens in enumerate(inputs):
        snd, rcv = builder.channel(depth, name=f"in{index}")
        builder.add(StreamSource(snd, tokens, name=f"src{index}"))
        receivers.append(rcv)
    senders = []
    sinks = []
    for index in range(n_outputs):
        snd, rcv = builder.channel(depth, name=f"out{index}")
        senders.append(snd)
        sinks.append(StreamSink(rcv, name=f"sink{index}"))
    block = make_block(receivers, senders)
    builder.add(block)
    for sink in sinks:
        builder.add(sink)
    builder.build().run(executor=executor)
    return [sink.tokens for sink in sinks]
