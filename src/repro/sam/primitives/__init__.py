"""SAM primitive blocks as DAM contexts.

Each primitive consumes/produces SAM token streams (payloads interleaved
with :class:`~repro.sam.token.Stop`/``DONE``).  Timing is injected in the
CSPT style: every primitive charges ``ii`` cycles per processed token, and
``stop_bubble`` extra cycles when handling a control token — the exact
knob the automated-calibration case study (Fig. 10) tunes.
"""

from .alu import BinaryAlu, UnaryAlu
from .array import ArrayVals
from .base import SamContext, TimingParams
from .crd import CrdDrop, CrdHold
from .fiber_lookup import FiberLookup
from .joiner import Intersect, Union
from .limiter import NonzeroLimiter
from .locate import Locate
from .reduce import Reduce
from .repeat import Repeat, RepeatSigGen
from .source import RootSource, StreamSource
from .spacc import SpaccV1
from .write import FiberWrite, StreamSink, ValsWrite

__all__ = [
    "SamContext",
    "TimingParams",
    "FiberLookup",
    "ArrayVals",
    "Repeat",
    "RepeatSigGen",
    "Intersect",
    "Union",
    "NonzeroLimiter",
    "Locate",
    "BinaryAlu",
    "UnaryAlu",
    "Reduce",
    "SpaccV1",
    "CrdDrop",
    "CrdHold",
    "FiberWrite",
    "ValsWrite",
    "StreamSink",
    "RootSource",
    "StreamSource",
]
